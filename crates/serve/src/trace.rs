//! Request-arrival traces: seeded synthetic generators and a JSON loader.
//!
//! A [`Trace`] is the serving layer's input: a time-sorted list of
//! [`Request`]s, each naming a tenant, a registered model, an arrival
//! cycle, and an optional absolute deadline. Traces come from three
//! places:
//!
//! * [`Trace::poisson`] — per-tenant Poisson processes (exponential
//!   inter-arrival gaps) merged into one stream;
//! * [`Trace::bursty`] — per-tenant on/off-modulated Poisson: arrivals
//!   cluster inside periodic burst windows, the adversarial shape for
//!   tail-latency comparisons between scheduler policies;
//! * [`Trace::zipf`] — one merged Poisson stream whose requests pick a
//!   model by Zipf-skewed popularity rank, the repeat-heavy mix that
//!   exercises the serving layer's weight cache;
//! * [`Trace::diurnal`] — the Zipf mix modulated by a repeating
//!   day-shaped rate curve (quiet night through midday peak), the
//!   long-horizon soak-run shape;
//! * [`Trace::from_json`] — a trace file, so recorded or hand-written
//!   workloads replay exactly.
//!
//! All generation is driven by [`crate::rng::Rng`]: a fixed seed yields a
//! byte-identical trace (and, downstream, a byte-identical serving
//! report) on every run.

use crate::rng::Rng;
use crate::ServeError;
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Dense index in arrival order (assigned by the trace constructor).
    pub id: u64,
    /// The tenant the request belongs to (SLOs are tracked per tenant).
    pub tenant: String,
    /// The registered model the request wants to run.
    pub model: String,
    /// Arrival time, fabric cycles.
    pub arrival: u64,
    /// Absolute completion deadline in fabric cycles, if the tenant has a
    /// latency SLO.
    pub deadline: Option<u64>,
}

/// One tenant's offered load, input to the synthetic generators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Tenant name.
    pub tenant: String,
    /// Registered model every request of this tenant runs.
    pub model: String,
    /// Mean inter-arrival gap, fabric cycles.
    pub mean_gap: u64,
    /// Relative deadline granted to each request (absolute deadline =
    /// arrival + this), if the tenant has one.
    pub deadline: Option<u64>,
}

/// A time-sorted request stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Requests in non-decreasing arrival order; ids are dense in this
    /// order.
    pub requests: Vec<Request>,
}

/// Fraction of the burst period that is "on" in [`Trace::bursty`]. The
/// in-burst rate is boosted by the reciprocal (4×) so the long-run
/// offered load matches the Poisson generator's.
const BURST_DUTY: f64 = 0.25;

impl Trace {
    /// Builds a trace from raw requests: sorts by `(arrival, tenant,
    /// model)` and reassigns dense ids, so equal inputs give identical
    /// traces regardless of input order.
    #[must_use]
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        requests.sort_by(|a, b| {
            (a.arrival, &a.tenant, &a.model, a.deadline)
                .cmp(&(b.arrival, &b.tenant, &b.model, b.deadline))
        });
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        Trace { requests }
    }

    /// Merged per-tenant Poisson streams over `[0, horizon)` cycles.
    /// Each tenant draws from its own seeded RNG sub-stream, so adding a
    /// tenant never perturbs the others' arrivals. A tenant with
    /// `mean_gap == 0` offers no load (an empty stream) rather than
    /// degenerating into an arrival every cycle.
    #[must_use]
    pub fn poisson(loads: &[TenantLoad], horizon: u64, seed: u64) -> Self {
        let mut requests = Vec::new();
        for (ti, load) in loads.iter().enumerate() {
            if load.mean_gap == 0 {
                continue;
            }
            let mut rng = Rng::new(seed.wrapping_add((ti as u64).wrapping_mul(0x9E37)));
            let mut t = 0u64;
            loop {
                let gap = rng.next_exp(load.mean_gap as f64).round().max(1.0);
                t = t.saturating_add(gap as u64);
                if t >= horizon {
                    break;
                }
                requests.push(Request {
                    id: 0,
                    tenant: load.tenant.clone(),
                    model: load.model.clone(),
                    arrival: t,
                    deadline: load.deadline.map(|d| t + d),
                });
            }
        }
        Trace::from_requests(requests)
    }

    /// On/off-modulated Poisson streams: each tenant's arrivals are
    /// confined to burst windows covering the first quarter of every
    /// `burst_period` cycles, where the instantaneous rate is boosted 4×
    /// over the tenant's mean. The long-run offered load matches
    /// [`Trace::poisson`]; only the clustering changes — which is exactly
    /// what separates scheduler policies at the tail.
    ///
    /// A `burst_period` longer than the horizon clamps: arrivals simply
    /// land in the single partial on-window the horizon covers. A tenant
    /// with `mean_gap == 0` offers no load, as in [`Trace::poisson`].
    #[must_use]
    pub fn bursty(loads: &[TenantLoad], horizon: u64, burst_period: u64, seed: u64) -> Self {
        let burst_period = burst_period.max(4);
        let on = ((burst_period as f64 * BURST_DUTY) as u64).max(1);
        let mut requests = Vec::new();
        for (ti, load) in loads.iter().enumerate() {
            if load.mean_gap == 0 {
                continue;
            }
            let mut rng = Rng::new(seed.wrapping_add((ti as u64).wrapping_mul(0xB5E7)));
            // inside a burst the gap shrinks by the duty factor, so the
            // long-run rate stays the tenant's mean
            let burst_gap = load.mean_gap as f64 * BURST_DUTY;
            let mut t = 0u64;
            loop {
                let gap = rng.next_exp(burst_gap).round().max(1.0);
                t = t.saturating_add(gap as u64);
                if t >= horizon {
                    break;
                }
                // skip the off phase: arrivals only land inside a window
                if t % burst_period >= on {
                    // saturating: a huge period must clamp at the
                    // horizon, not overflow the window arithmetic
                    t = (t / burst_period)
                        .saturating_add(1)
                        .saturating_mul(burst_period);
                    if t >= horizon {
                        break;
                    }
                    // the gap's remainder restarts inside the next window
                    continue;
                }
                requests.push(Request {
                    id: 0,
                    tenant: load.tenant.clone(),
                    model: load.model.clone(),
                    arrival: t,
                    deadline: load.deadline.map(|d| t + d),
                });
            }
        }
        Trace::from_requests(requests)
    }

    /// One merged Poisson arrival stream with Zipf-skewed model
    /// popularity: every `mean_gap` cycles on average a request arrives
    /// and picks its tenant/model by rank — the `i`-th entry of `loads`
    /// is drawn with weight `1 / (i + 1)^exponent`. With `exponent`
    /// around 1 the head entry dominates (the classic repeat-heavy
    /// serving mix a weight cache exists for); `exponent == 0.0` is a
    /// uniform pick. The per-tenant `mean_gap` fields are ignored — the
    /// stream's rate is the `mean_gap` argument; per-tenant deadlines
    /// still apply. Empty `loads` or `mean_gap == 0` yields an empty
    /// trace.
    #[must_use]
    pub fn zipf(
        loads: &[TenantLoad],
        horizon: u64,
        mean_gap: u64,
        exponent: f64,
        seed: u64,
    ) -> Self {
        if loads.is_empty() || mean_gap == 0 {
            return Trace::from_requests(Vec::new());
        }
        let weights: Vec<f64> = (0..loads.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut rng = Rng::new(seed.wrapping_add(0xC2B2_AE3D_27D4_EB4F));
        let mut requests = Vec::new();
        let mut t = 0u64;
        loop {
            let gap = rng.next_exp(mean_gap as f64).round().max(1.0);
            t = t.saturating_add(gap as u64);
            if t >= horizon {
                break;
            }
            let mut pick = rng.next_f64() * total;
            let mut idx = 0usize;
            while idx + 1 < loads.len() && pick >= weights[idx] {
                pick -= weights[idx];
                idx += 1;
            }
            let load = &loads[idx];
            requests.push(Request {
                id: 0,
                tenant: load.tenant.clone(),
                model: load.model.clone(),
                arrival: t,
                deadline: load.deadline.map(|d| t + d),
            });
        }
        Trace::from_requests(requests)
    }

    /// [`Trace::zipf`]'s popularity skew with [`Trace::bursty`]'s on/off
    /// arrival clustering: one merged stream whose arrivals are confined
    /// to burst windows (first quarter of every `burst_period`, rate
    /// boosted 4× inside so the long-run offered load stays
    /// `1/mean_gap`), each request picking its tenant/model by Zipf rank
    /// over `loads`. This is the cluster failover demo's trace shape —
    /// bursty multi-tenant traffic with a repeat-heavy model mix. Empty
    /// `loads` or `mean_gap == 0` yields an empty trace.
    #[must_use]
    pub fn zipf_bursty(
        loads: &[TenantLoad],
        horizon: u64,
        mean_gap: u64,
        exponent: f64,
        burst_period: u64,
        seed: u64,
    ) -> Self {
        if loads.is_empty() || mean_gap == 0 {
            return Trace::from_requests(Vec::new());
        }
        let burst_period = burst_period.max(4);
        let on = ((burst_period as f64 * BURST_DUTY) as u64).max(1);
        let weights: Vec<f64> = (0..loads.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut rng = Rng::new(seed.wrapping_add(0xC2B2_AE3D_27D4_EB4F));
        let burst_gap = mean_gap as f64 * BURST_DUTY;
        let mut requests = Vec::new();
        let mut t = 0u64;
        loop {
            let gap = rng.next_exp(burst_gap).round().max(1.0);
            t = t.saturating_add(gap as u64);
            if t >= horizon {
                break;
            }
            if t % burst_period >= on {
                t = (t / burst_period)
                    .saturating_add(1)
                    .saturating_mul(burst_period);
                if t >= horizon {
                    break;
                }
                continue;
            }
            let mut pick = rng.next_f64() * total;
            let mut idx = 0usize;
            while idx + 1 < loads.len() && pick >= weights[idx] {
                pick -= weights[idx];
                idx += 1;
            }
            let load = &loads[idx];
            requests.push(Request {
                id: 0,
                tenant: load.tenant.clone(),
                model: load.model.clone(),
                arrival: t,
                deadline: load.deadline.map(|d| t + d),
            });
        }
        Trace::from_requests(requests)
    }

    /// Diurnal Zipf traffic for soak runs: one merged arrival stream
    /// whose rate follows a repeating day-shaped curve — a dead-quiet
    /// night, a morning ramp, a midday peak, an evening fade — while
    /// every request picks its tenant/model by Zipf rank over `loads`
    /// exactly as in [`Trace::zipf`].
    ///
    /// The day is split into eight equal phases with rate multipliers
    /// `[0, 1, 2, 5, 8, 5, 2, 1]` over the base rate `1/mean_gap`
    /// (`day` is rounded down to a multiple of eight phases, minimum
    /// one cycle each). The first phase offers *zero* load: no
    /// arrivals are generated there at all — the generator jumps to
    /// the next phase boundary instead of panicking on or spinning at
    /// an infinite gap, and an arrival whose gap lands inside a later
    /// night is likewise suppressed. A horizon that ends inside the
    /// opening night yields an empty trace. Empty `loads` or
    /// `mean_gap == 0` yields an empty trace, as in [`Trace::zipf`].
    #[must_use]
    pub fn diurnal(
        loads: &[TenantLoad],
        horizon: u64,
        mean_gap: u64,
        exponent: f64,
        day: u64,
        seed: u64,
    ) -> Self {
        const PHASES: [u64; 8] = [0, 1, 2, 5, 8, 5, 2, 1];
        if loads.is_empty() || mean_gap == 0 {
            return Trace::from_requests(Vec::new());
        }
        let phase_len = (day / 8).max(1);
        let day = phase_len * 8; // phases tile the absolute cycle grid
        let weights: Vec<f64> = (0..loads.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut rng = Rng::new(seed.wrapping_add(0xD1AB_4A1D_27D4_EB4F));
        let mut requests = Vec::new();
        let mut t = 0u64;
        loop {
            let phase = ((t % day) / phase_len) as usize;
            let m = PHASES[phase];
            if m == 0 {
                // zero-rate phase: skip straight to the next boundary
                t = (t / phase_len)
                    .saturating_add(1)
                    .saturating_mul(phase_len);
                if t >= horizon {
                    break;
                }
                continue;
            }
            let gap = rng
                .next_exp(mean_gap as f64 / m as f64)
                .round()
                .max(1.0);
            t = t.saturating_add(gap as u64);
            if t >= horizon {
                break;
            }
            // a gap drawn in the evening can land inside the night:
            // re-check the landing phase and suppress, never emit
            if PHASES[((t % day) / phase_len) as usize] == 0 {
                continue;
            }
            let mut pick = rng.next_f64() * total;
            let mut idx = 0usize;
            while idx + 1 < loads.len() && pick >= weights[idx] {
                pick -= weights[idx];
                idx += 1;
            }
            let load = &loads[idx];
            requests.push(Request {
                id: 0,
                tenant: load.tenant.clone(),
                model: load.model.clone(),
                arrival: t,
                deadline: load.deadline.map(|d| t + d),
            });
        }
        Trace::from_requests(requests)
    }

    /// Renders the trace as a JSON document ([`Trace::from_json`] reads
    /// it back verbatim).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"requests\":[");
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"tenant\":{},\"model\":{},\"arrival\":{},\"deadline\":{}}}",
                crate::slo::json_str(&r.tenant),
                crate::slo::json_str(&r.model),
                r.arrival,
                r.deadline.map_or("null".to_string(), |d| d.to_string()),
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a trace from its JSON form:
    ///
    /// ```json
    /// {"requests": [
    ///   {"tenant": "vision", "model": "resnet18_segment",
    ///    "arrival": 0, "deadline": 500000},
    ///   {"tenant": "keyword", "model": "small", "arrival": 1200}
    /// ]}
    /// ```
    ///
    /// `deadline` may be a number, `null`, or absent. Requests are
    /// re-sorted and re-numbered, so hand-edited files need no care about
    /// ordering or ids.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadTrace`] on malformed JSON or missing
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        p.expect('{')?;
        let mut requests = Vec::new();
        let mut saw_requests = false;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            if key == "requests" {
                saw_requests = true;
                requests = p.request_array()?;
            } else {
                p.skip_value()?;
            }
            p.skip_ws();
            if !p.eat(',') {
                p.skip_ws();
                p.expect('}')?;
                break;
            }
        }
        if !saw_requests {
            return Err(ServeError::BadTrace {
                reason: "missing `requests` array".into(),
            });
        }
        p.skip_ws();
        if !p.done() {
            return Err(p.err("trailing characters after the trace object"));
        }
        Ok(Trace::from_requests(requests))
    }
}

/// A hand-rolled parser for the trace subset of JSON (the serde shim has
/// no deserializer — see `shims/README.md`).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, reason: &str) -> ServeError {
        ServeError::BadTrace {
            reason: format!("{reason} (at byte {})", self.pos),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ServeError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn string(&mut self) -> Result<String, ServeError> {
        self.skip_ws();
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.err("unsupported string escape")),
                    }
                    self.pos += 1;
                }
                // JSON requires escapes only below 0x20; anything else
                // (including DEL and multi-byte leads) passes through raw.
                Some(b) if b >= 0x20 => {
                    // multi-byte UTF-8 passes through byte by byte; the
                    // input is a &str so the bytes are valid
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the `\u` is already
    /// consumed), pairing surrogates per RFC 8259 §7.
    fn unicode_escape(&mut self) -> Result<char, ServeError> {
        let high = self.hex4()?;
        let code = if (0xD800..=0xDBFF).contains(&high) {
            if !(self.eat('\\') && self.eat('u')) {
                return Err(self.err("unpaired high surrogate"));
            }
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(self.err("invalid low surrogate"));
            }
            0x1_0000 + ((high - 0xD800) << 10) + (low - 0xDC00)
        } else {
            high
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ServeError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<u64, ServeError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a non-negative integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of range"))
    }

    fn keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    /// Skips any value (used for unknown keys, keeping the format
    /// forward-extensible).
    fn skip_value(&mut self) -> Result<(), ServeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'0'..=b'9') => {
                self.number()?;
            }
            Some(b'n') if self.keyword("null") => {}
            Some(b't') if self.keyword("true") => {}
            Some(b'f') if self.keyword("false") => {}
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if !self.eat(']') {
                    loop {
                        self.skip_value()?;
                        self.skip_ws();
                        if !self.eat(',') {
                            self.expect(']')?;
                            break;
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if !self.eat('}') {
                    loop {
                        self.string()?;
                        self.skip_ws();
                        self.expect(':')?;
                        self.skip_value()?;
                        self.skip_ws();
                        if !self.eat(',') {
                            self.expect('}')?;
                            break;
                        }
                    }
                }
            }
            _ => return Err(self.err("expected a JSON value")),
        }
        Ok(())
    }

    fn request_array(&mut self) -> Result<Vec<Request>, ServeError> {
        self.skip_ws();
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(']') {
            return Ok(out);
        }
        loop {
            out.push(self.request()?);
            self.skip_ws();
            if !self.eat(',') {
                self.expect(']')?;
                return Ok(out);
            }
        }
    }

    fn request(&mut self) -> Result<Request, ServeError> {
        self.skip_ws();
        self.expect('{')?;
        let (mut tenant, mut model, mut arrival, mut deadline) = (None, None, None, None);
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            match key.as_str() {
                "tenant" => tenant = Some(self.string()?),
                "model" => model = Some(self.string()?),
                "arrival" => arrival = Some(self.number()?),
                "deadline" => {
                    if self.keyword("null") {
                        deadline = None;
                    } else {
                        deadline = Some(self.number()?);
                    }
                }
                _ => self.skip_value()?,
            }
            self.skip_ws();
            if !self.eat(',') {
                self.skip_ws();
                self.expect('}')?;
                break;
            }
        }
        let model = model.ok_or_else(|| self.err("request missing `model`"))?;
        Ok(Request {
            id: 0,
            tenant: tenant.unwrap_or_else(|| model.clone()),
            model,
            arrival: arrival.ok_or_else(|| self.err("request missing `arrival`"))?,
            deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads() -> Vec<TenantLoad> {
        vec![
            TenantLoad {
                tenant: "vision".into(),
                model: "resnet18_segment".into(),
                mean_gap: 50_000,
                deadline: Some(400_000),
            },
            TenantLoad {
                tenant: "keyword".into(),
                model: "small".into(),
                mean_gap: 10_000,
                deadline: None,
            },
        ]
    }

    #[test]
    fn poisson_is_sorted_dense_and_deterministic() {
        let a = Trace::poisson(&loads(), 500_000, 42);
        let b = Trace::poisson(&loads(), 500_000, 42);
        assert_eq!(a, b);
        assert!(!a.requests.is_empty());
        for (i, r) in a.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.arrival < 500_000);
            if i > 0 {
                assert!(r.arrival >= a.requests[i - 1].arrival);
            }
        }
        // both tenants show up, deadlines only where configured
        assert!(a.requests.iter().any(|r| r.tenant == "vision"));
        assert!(a.requests.iter().any(|r| r.tenant == "keyword"));
        for r in &a.requests {
            match r.tenant.as_str() {
                "vision" => assert_eq!(r.deadline, Some(r.arrival + 400_000)),
                _ => assert_eq!(r.deadline, None),
            }
        }
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let t = Trace::poisson(&loads(), 2_000_000, 1);
        let keyword = t.requests.iter().filter(|r| r.tenant == "keyword").count();
        // mean gap 10_000 over 2M cycles → ~200 expected
        assert!((120..=280).contains(&keyword), "{keyword}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            Trace::poisson(&loads(), 500_000, 1),
            Trace::poisson(&loads(), 500_000, 2)
        );
    }

    #[test]
    fn bursty_clusters_arrivals() {
        let period = 100_000u64;
        let t = Trace::bursty(&loads(), 2_000_000, period, 42);
        assert!(!t.requests.is_empty());
        let on = (period as f64 * BURST_DUTY) as u64;
        for r in &t.requests {
            assert!(r.arrival % period < on, "arrival outside burst window");
        }
    }

    #[test]
    fn bursty_is_deterministic() {
        let a = Trace::bursty(&loads(), 1_000_000, 100_000, 9);
        let b = Trace::bursty(&loads(), 1_000_000, 100_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_is_deterministic_and_head_heavy() {
        let a = Trace::zipf(&loads(), 2_000_000, 10_000, 1.2, 42);
        let b = Trace::zipf(&loads(), 2_000_000, 10_000, 1.2, 42);
        assert_eq!(a, b);
        assert!(!a.requests.is_empty());
        // rank 0 ("vision") must dominate rank 1 under exponent > 1
        let head = a.requests.iter().filter(|r| r.tenant == "vision").count();
        let tail = a.requests.len() - head;
        assert!(head > tail, "head {head} vs tail {tail}");
        for r in &a.requests {
            match r.tenant.as_str() {
                "vision" => assert_eq!(r.deadline, Some(r.arrival + 400_000)),
                _ => assert_eq!(r.deadline, None),
            }
        }
    }

    #[test]
    fn zipf_exponent_zero_is_roughly_uniform() {
        let t = Trace::zipf(&loads(), 4_000_000, 5_000, 0.0, 7);
        let head = t.requests.iter().filter(|r| r.tenant == "vision").count();
        let frac = head as f64 / t.requests.len() as f64;
        assert!((0.4..0.6).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn zipf_degenerate_inputs_are_empty() {
        assert!(Trace::zipf(&[], 1_000_000, 100, 1.0, 1).requests.is_empty());
        assert!(Trace::zipf(&loads(), 1_000_000, 0, 1.0, 1).requests.is_empty());
    }

    #[test]
    fn diurnal_is_deterministic_and_sorted() {
        let a = Trace::diurnal(&loads(), 2_000_000, 5_000, 1.1, 200_000, 42);
        let b = Trace::diurnal(&loads(), 2_000_000, 5_000, 1.1, 200_000, 42);
        assert_eq!(a, b);
        assert!(!a.requests.is_empty());
        for (i, r) in a.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.arrival < 2_000_000);
            if i > 0 {
                assert!(r.arrival >= a.requests[i - 1].arrival);
            }
        }
    }

    #[test]
    fn diurnal_zero_rate_phase_emits_no_arrivals() {
        // phase 0 of every day is dead air: no arrival may land there
        let day = 160_000u64;
        let phase_len = day / 8;
        let t = Trace::diurnal(&loads(), 4_000_000, 2_000, 1.1, day, 7);
        assert!(!t.requests.is_empty());
        for r in &t.requests {
            assert!(
                r.arrival % day >= phase_len,
                "arrival {} inside the zero-rate night",
                r.arrival
            );
        }
    }

    #[test]
    fn diurnal_peak_outdraws_shoulder() {
        // the 8x midday phase (index 4) must carry more arrivals than
        // the 1x morning phase (index 1) over many days
        let day = 80_000u64;
        let phase_len = day / 8;
        let t = Trace::diurnal(&loads(), 8_000_000, 2_000, 1.1, day, 3);
        let in_phase = |p: u64| {
            t.requests
                .iter()
                .filter(|r| (r.arrival % day) / phase_len == p)
                .count()
        };
        assert!(in_phase(4) > 2 * in_phase(1), "peak should dominate");
    }

    #[test]
    fn diurnal_degenerate_inputs_are_empty() {
        // no tenants / zero rate, as the other generators
        assert!(Trace::diurnal(&[], 1_000_000, 100, 1.0, 8_000, 1)
            .requests
            .is_empty());
        assert!(Trace::diurnal(&loads(), 1_000_000, 0, 1.0, 8_000, 1)
            .requests
            .is_empty());
        // a horizon that ends inside the opening night emits nothing
        // (and must terminate rather than spin on the zero-rate phase)
        assert!(Trace::diurnal(&loads(), 500, 100, 1.0, 80_000, 1)
            .requests
            .is_empty());
        // a degenerate one-cycle day still terminates and stays sorted
        let t = Trace::diurnal(&loads(), 100_000, 1_000, 1.0, 0, 5);
        for w in t.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::poisson(&loads(), 300_000, 13);
        let parsed = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn json_round_trip_escapes_hostile_names() {
        // Control chars (incl. ESC, the {:?}-formatting trap), quotes,
        // backslashes, DEL, and non-ASCII must all survive the
        // to_json/from_json round trip as valid JSON.
        let t = Trace::from_requests(vec![
            Request {
                id: 0,
                tenant: "esc\u{1b}[31m\"quoted\"\\back".into(),
                model: "tab\there\nnewline".into(),
                arrival: 5,
                deadline: Some(100),
            },
            Request {
                id: 0,
                tenant: "del\u{7f}süß-日本語".into(),
                model: "\u{1}\u{1f}".into(),
                arrival: 9,
                deadline: None,
            },
        ]);
        let json = t.to_json();
        assert!(!json.contains("\\u{"), "Rust Debug escapes are not JSON: {json}");
        assert_eq!(Trace::from_json(&json).unwrap(), t);
    }

    #[test]
    fn json_parses_standard_escapes() {
        let t = Trace::from_json(
            r#"{"requests": [{"tenant": "aA\n\t\r\b\f\u001b\u00e9\ud83d\ude00",
                             "model": "m", "arrival": 1}]}"#,
        )
        .unwrap();
        assert_eq!(
            t.requests[0].tenant,
            "aA\n\t\r\u{8}\u{c}\u{1b}\u{e9}\u{1f600}"
        );
        for bad in [
            r#"{"requests": [{"tenant": "\u12", "model": "m", "arrival": 1}]}"#,
            r#"{"requests": [{"tenant": "\ud800x", "model": "m", "arrival": 1}]}"#,
            r#"{"requests": [{"tenant": "\ud800\u0041", "model": "m", "arrival": 1}]}"#,
        ] {
            assert!(Trace::from_json(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn json_accepts_sparse_requests() {
        let t = Trace::from_json(
            r#"{ "requests": [
                {"model": "small", "arrival": 10},
                {"tenant": "v", "model": "big", "arrival": 5,
                 "deadline": 500, "note": "ignored", "extra": [1, {"a": true}]}
            ] }"#,
        )
        .unwrap();
        assert_eq!(t.requests.len(), 2);
        // sorted by arrival, tenant defaults to the model name
        assert_eq!(t.requests[0].tenant, "v");
        assert_eq!(t.requests[0].deadline, Some(500));
        assert_eq!(t.requests[1].tenant, "small");
        assert_eq!(t.requests[1].deadline, None);
    }

    #[test]
    fn json_errors_are_typed() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"requests": [{"arrival": 1}]}"#,
            r#"{"requests": [{"model": "m"}]}"#,
            r#"{"requests": [{"model": "m", "arrival": -4}]}"#,
            r#"{"requests": []} trailing"#,
        ] {
            match Trace::from_json(bad) {
                Err(ServeError::BadTrace { .. }) => {}
                other => panic!("`{bad}` should fail as BadTrace, got {other:?}"),
            }
        }
        // the empty list itself is fine
        assert!(Trace::from_json(r#"{"requests": []}"#).unwrap().requests.is_empty());
    }
}
