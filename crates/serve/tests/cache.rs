//! Weight-cache integration tests (DESIGN.md §15).
//!
//! Four guarantees the cache must not erode:
//!
//! 1. **Determinism** — with the cache enabled, a serving report's JSON
//!    bytes are invariant across simulation engines and node-stepping
//!    thread counts, exactly like the pre-cache loop.
//! 2. **Byte-exact fallback** — `weight_cache: None` reproduces the
//!    pre-cache serving report bit-for-bit (pinned fixture), so the
//!    cache is a pure opt-in.
//! 3. **Warm resume after preemption** — a preempted best-effort victim
//!    whose tiles survive the preemptor's placement resumes *warm*: no
//!    reload cycles, no eviction of its resident set.
//! 4. **Estimate fidelity** — the registry's analytic service estimate
//!    used for SJF ordering and deadline shedding brackets a measured
//!    run and preserves the measured ordering across the model mix.

use maicc_serve::cache::WeightCacheConfig;
use maicc_serve::overload::{OverloadConfig, Tier};
use maicc_serve::registry::three_model_mix;
use maicc_serve::server::{serve, Policy, ServeConfig};
use maicc_serve::trace::{Request, Trace};
use maicc_sim::stream::{Engine, StreamSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Cache-enabled serving stays a pure function of (trace, config):
    /// identical JSON bytes under every engine × thread-count pairing,
    /// on the repeat-heavy Zipf mix the cache is built for.
    #[test]
    fn prop_cached_report_bytes_invariant_across_engines_and_threads(
        seed in 0u64..10_000,
        policy_idx in 0usize..2,
    ) {
        let (registry, loads) = three_model_mix();
        let trace = Trace::zipf(&loads, 150_000, 14_000, 2.0, seed);
        let policy = [Policy::Fcfs, Policy::Sjf][policy_idx];
        let mut baseline: Option<String> = None;
        for engine in [Engine::EventDriven, Engine::CycleAccurate] {
            for threads in [1usize, 2, 4, 8] {
                let cfg = ServeConfig {
                    policy,
                    engine,
                    threads,
                    pool_tiles: 8,
                    weight_cache: Some(WeightCacheConfig::default()),
                    ..ServeConfig::default()
                };
                let json = serve(&registry, &trace, &cfg).unwrap().to_json();
                match &baseline {
                    None => baseline = Some(json),
                    Some(b) => prop_assert_eq!(
                        b,
                        &json,
                        "seed {} policy {:?} diverged under {:?} x {} threads",
                        seed,
                        policy,
                        engine,
                        threads
                    ),
                }
            }
        }
    }
}

/// `weight_cache: None` is the pre-cache serving loop, byte for byte:
/// the report matches the fixture pinned before the cache existed, so
/// enabling the feature in the codebase changes nothing for configs
/// that don't ask for it.
#[test]
fn cache_disabled_reproduces_pre_cache_baseline_exactly() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 600_000, 200_000, 42);
    let cfg = ServeConfig {
        policy: Policy::Sjf,
        pool_tiles: 8,
        weight_cache: None,
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &cfg).unwrap();
    assert_eq!(
        report.to_json(),
        include_str!("fixtures/pr7_baseline.json"),
        "weight_cache: None must serialize byte-identically to the \
         pre-cache serving loop"
    );
}

/// Preemption must not cost the victim its resident weights: a
/// best-effort request evicted by a hard arrival whose placement does
/// not claim the victim's tiles resumes warm — zero reload cycles —
/// instead of silently paying a second cold load.
///
/// Geometry (16-tile pool, serpentine prefix placement):
///
/// * t=0     `beB`  two_layer (6 tiles)          → z0..z5
/// * t=1000  `beA`  small (3 tiles)              → z6..z8
/// * t=2000  `soft` resnet18_segment (7 tiles)   → z9..z15
/// * t=3000  `hard` two_layer (6 tiles)          → no free tiles
///
/// The hard arrival preempts best-effort runners latest-admitted first
/// (`beA`, then `beB`) until it fits. Both victims' weights stay
/// resident on their vacated tiles. The hard request lands on z0..z5;
/// `beA` resumes in the same scheduling pass on its own z6..z8 — warm.
#[test]
fn preempted_victim_resumes_warm_on_its_surviving_tiles() {
    let (registry, _) = three_model_mix();
    let req = |tenant: &str, model: &str, arrival: u64| Request {
        id: 0, // reassigned by from_requests
        tenant: tenant.into(),
        model: model.into(),
        arrival,
        deadline: None,
    };
    let trace = Trace::from_requests(vec![
        req("beB", "two_layer", 0),
        req("beA", "small", 1_000),
        req("soft", "resnet18_segment", 2_000),
        req("hard", "two_layer", 3_000),
    ]);
    let cfg = ServeConfig {
        policy: Policy::Sjf,
        pool_tiles: 16,
        overload: Some(OverloadConfig {
            tiers: vec![
                ("hard".into(), Tier::Hard),
                ("soft".into(), Tier::Soft),
                ("beA".into(), Tier::BestEffort),
                ("beB".into(), Tier::BestEffort),
            ],
            ..OverloadConfig::default()
        }),
        weight_cache: Some(WeightCacheConfig::default()),
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &cfg).unwrap();
    assert_eq!(report.completed, 4, "nothing sheds: no deadlines, deep queue");
    assert_eq!(report.dropped, 0);
    assert_eq!(report.preemptions, 2, "hard evicts both best-effort runners");

    let by_tenant = |t: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.tenant == t)
            .unwrap_or_else(|| panic!("tenant {t} missing from outcomes"))
    };
    let be_a = by_tenant("beA");
    assert_eq!(be_a.preemptions, 1);
    assert!(!be_a.dropped);
    assert_eq!(
        be_a.warm,
        Some(true),
        "the victim's weights survived on z6..z8, so its resume is warm"
    );
    assert_eq!(
        be_a.load_cycles, 0,
        "a warm resume pays no reload: got {} cycles",
        be_a.load_cycles
    );

    let be_b = by_tenant("beB");
    assert_eq!(be_b.preemptions, 1);
    assert!(!be_b.dropped, "the deeper victim still completes eventually");

    let hard = by_tenant("hard");
    assert!(!hard.dropped);
    assert_eq!(hard.preemptions, 0, "hard tier is never preempted");

    let cache = report.cache.as_ref().expect("cache-enabled run reports");
    assert!(
        cache.hits >= 1,
        "at least the warm resume must count as a hit (got {})",
        cache.hits
    );
}

/// The analytic estimate that orders SJF admission and prices deadline
/// shedding must track reality: for every model in the built-in mix it
/// stays below the measured fabric run (optimistic, so SJF never
/// starves a genuinely short job) but within 2.5× of it, and ranking
/// models by estimate gives the same order as ranking by measurement.
#[test]
fn analytic_estimate_brackets_and_orders_measured_runs() {
    let (registry, _) = three_model_mix();
    let mut pairs: Vec<(String, u64, u64)> = Vec::new();
    for name in ["small", "two_layer", "resnet18_segment"] {
        let entry = registry.get(name).expect("built-in model");
        let measured = StreamSim::new(&entry.stream)
            .expect("placement on a healthy array")
            .run(5_000_000)
            .expect("run completes")
            .cycles;
        let est = entry.est_cycles;
        assert!(
            est < measured,
            "{name}: estimate {est} should be optimistic vs measured {measured}"
        );
        assert!(
            measured < est * 5 / 2,
            "{name}: measured {measured} exceeds 2.5x the estimate {est} — \
             the SJF/shedding estimate has drifted from the cost model"
        );
        pairs.push((name.to_string(), est, measured));
    }
    let mut by_est = pairs.clone();
    by_est.sort_by_key(|p| p.1);
    let mut by_measured = pairs;
    by_measured.sort_by_key(|p| p.2);
    let est_order: Vec<&str> = by_est.iter().map(|p| p.0.as_str()).collect();
    let measured_order: Vec<&str> =
        by_measured.iter().map(|p| p.0.as_str()).collect();
    assert_eq!(
        est_order, measured_order,
        "estimate must rank the mix the same way measured service does"
    );
}
