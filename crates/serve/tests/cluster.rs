//! Cluster serving tests: single-fabric parity, fault-domain failover,
//! deterministic re-dispatch, and cluster config validation.

use maicc_serve::cluster::{
    serve_cluster, ClusterConfig, ClusterFaultPlan, ClusterShedConfig,
    FabricFault, FabricFaultKind,
};
use maicc_serve::overload::Tier;
use maicc_serve::registry::three_model_mix;
use maicc_serve::server::{serve, Policy, ServeConfig};
use maicc_serve::trace::Trace;
use maicc_serve::ServeError;
use maicc_sim::stream::Engine;

fn base(policy: Policy, pool_tiles: usize) -> ServeConfig {
    ServeConfig {
        policy,
        pool_tiles,
        ..ServeConfig::default()
    }
}

fn kill(fabric: usize, at: u64) -> ClusterFaultPlan {
    ClusterFaultPlan {
        events: vec![FabricFault {
            fabric,
            at,
            kind: FabricFaultKind::Outage { duration: None },
        }],
    }
}

// ---------------------------------------------------------------- parity

/// The acceptance bar: a zero-fault N=1 cluster IS the single fabric.
/// Both policies, with and without the weight cache.
#[test]
fn n1_zero_fault_cluster_matches_single_fabric_byte_for_byte() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 400_000, 150_000, 13);
    for policy in [Policy::Fcfs, Policy::Sjf] {
        for cache in [false, true] {
            let mut cfg = base(policy, 8);
            if cache {
                cfg.weight_cache =
                    Some(maicc_serve::cache::WeightCacheConfig::default());
            }
            let single = serve(&registry, &trace, &cfg).unwrap().to_json();
            let cluster = ClusterConfig {
                fabrics: 1,
                base: cfg,
                ..ClusterConfig::default()
            };
            let report = serve_cluster(&registry, &trace, &cluster).unwrap();
            assert_eq!(
                single,
                report.serve.to_json(),
                "N=1 drifted from serve() under {policy:?} cache={cache}"
            );
            assert_eq!(report.failovers, 0);
            assert_eq!(report.requests_lost, 0);
        }
    }
}

/// The N=1 serve report is pinned to a committed fixture, so a byte
/// change to either the single-fabric loop or the cluster wrapper is a
/// conscious decision (regenerate with
/// `cargo run --release -p maicc --bin maicc -- serve --quick --fabrics 1 --serve-only`
/// style output of the config below).
#[test]
fn n1_cluster_report_matches_pinned_fixture() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 300_000, 7);
    let cluster = ClusterConfig {
        fabrics: 1,
        base: base(Policy::Fcfs, 16),
        ..ClusterConfig::default()
    };
    let report = serve_cluster(&registry, &trace, &cluster).unwrap();
    let fixture = include_str!("fixtures/cluster_n1_baseline.json");
    assert_eq!(report.serve.to_json(), fixture);
    // And the fixture is exactly what serve() itself says.
    let single = serve(&registry, &trace, &cluster.base).unwrap();
    assert_eq!(single.to_json(), fixture);
}

/// Regenerates the pinned fixture. Run explicitly (`cargo test -p
/// maicc-serve --test cluster -- --ignored regenerate`) when the serve
/// report format changes deliberately, and commit the diff.
#[test]
#[ignore = "writes tests/fixtures/cluster_n1_baseline.json"]
fn regenerate_cluster_n1_fixture() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 300_000, 7);
    let cluster = ClusterConfig {
        fabrics: 1,
        base: base(Policy::Fcfs, 16),
        ..ClusterConfig::default()
    };
    let report = serve_cluster(&registry, &trace, &cluster).unwrap();
    std::fs::write(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/cluster_n1_baseline.json"
        ),
        report.serve.to_json(),
    )
    .unwrap();
}

// ------------------------------------------------------------- failover

fn failover_cluster(engine: Engine, threads: usize) -> ClusterConfig {
    ClusterConfig {
        fabrics: 8,
        replicas: 2,
        heartbeat_interval: 20_000,
        missed_heartbeats: 2,
        failover_budget: 3,
        prewarm_replicas: true,
        tiers: vec![
            ("vision".into(), Tier::Hard),
            ("assist".into(), Tier::Soft),
            ("keyword".into(), Tier::BestEffort),
        ],
        shed: Some(ClusterShedConfig {
            capacity_fraction: 0.95,
            shed_late: false,
        }),
        faults: kill(0, 120_000),
        base: ServeConfig {
            engine,
            threads,
            weight_cache: Some(maicc_serve::cache::WeightCacheConfig::default()),
            ..base(Policy::Sjf, 8)
        },
    }
}

/// A mid-run fabric kill over 8 fabrics: the dead fabric is detected on
/// a heartbeat edge, drained, and its requests land elsewhere. Nothing
/// Hard is lost, and the cluster keeps completing work.
#[test]
fn fabric_kill_fails_over_without_losing_hard_requests() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 400_000, 150_000, 13);
    let cfg = failover_cluster(Engine::EventDriven, 1);
    let report = serve_cluster(&registry, &trace, &cfg).unwrap();
    assert_eq!(report.fabrics, 8);
    assert!(report.per_fabric[0].killed);
    assert_eq!(report.hard_requests_lost, 0, "Hard tier must survive");
    assert!(report.serve.completed > 0);
    // The kill at 120k silences the 140k and 160k heartbeat edges; the
    // second miss declares the fabric dead, 40k after the outage.
    assert_eq!(report.detect_max_cycles, 40_000);
    // Anything the dead fabric held or queued was re-dispatched or was
    // never routed there; drained + failovers agree with the counters.
    assert_eq!(
        report.failovers,
        report
            .per_fabric
            .iter()
            .map(|f| f.drained)
            .sum::<u64>()
            .saturating_sub(report.requests_lost),
        "every drained request either re-dispatched or was lost"
    );
    // Fabric 0 receives nothing after detection.
    assert!(report.per_fabric[0].completed <= report.per_fabric[0].dispatched);
}

/// The full cluster report (routing, failover, shedding, cache merge)
/// is byte-identical across both engines and node-stepping thread
/// counts {1, 2, 4, 8} — the same bar every single-fabric report meets.
#[test]
fn cluster_failover_report_is_engine_and_thread_invariant() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 300_000, 150_000, 13);
    let mut baseline: Option<String> = None;
    for engine in [Engine::EventDriven, Engine::CycleAccurate] {
        for threads in [1usize, 2, 4, 8] {
            let cfg = failover_cluster(engine, threads);
            let json = serve_cluster(&registry, &trace, &cfg)
                .unwrap()
                .to_json();
            match &baseline {
                None => baseline = Some(json),
                Some(b) => assert_eq!(
                    b, &json,
                    "cluster report diverged under {engine:?} x {threads} threads"
                ),
            }
        }
    }
}

/// A temporary outage rejoins on a heartbeat edge after repair: the
/// fabric comes back routable (and cold), and later work can land on it
/// again.
#[test]
fn outage_with_duration_rejoins_on_a_heartbeat_edge() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 400_000, 150_000, 13);
    let cfg = ClusterConfig {
        fabrics: 2,
        replicas: 2,
        heartbeat_interval: 20_000,
        faults: ClusterFaultPlan {
            events: vec![FabricFault {
                fabric: 0,
                at: 50_000,
                kind: FabricFaultKind::Outage {
                    duration: Some(60_000),
                },
            }],
        },
        base: base(Policy::Fcfs, 8),
        ..ClusterConfig::default()
    };
    let report = serve_cluster(&registry, &trace, &cfg).unwrap();
    assert!(report.per_fabric[0].killed);
    assert_eq!(report.hard_requests_lost, 0);
    // Down 50k-110k, rejoins at the 120k heartbeat edge; bursts keep
    // arriving until 400k, so the rejoined fabric serves again.
    assert!(
        report.per_fabric[0].completed > 0,
        "rejoined fabric never served: {:?}",
        report.per_fabric[0]
    );
    assert_eq!(report.requests_lost, 0, "a 2-fabric cluster absorbs one outage");
}

/// Losing a tile bank strands overlapping runs and re-dispatches them
/// immediately (the fabric observes its own fault — no heartbeat wait),
/// and the lost tiles never host again.
#[test]
fn tile_bank_loss_redispatches_overlapping_runs() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 400_000, 150_000, 13);
    let cfg = ClusterConfig {
        fabrics: 2,
        replicas: 2,
        faults: ClusterFaultPlan {
            events: vec![FabricFault {
                fabric: 0,
                // Mid-burst: something is running on the serpentine head.
                at: 20_000,
                kind: FabricFaultKind::TileLoss { tiles: 4 },
            }],
        },
        base: base(Policy::Fcfs, 8),
        ..ClusterConfig::default()
    };
    let report = serve_cluster(&registry, &trace, &cfg).unwrap();
    assert_eq!(report.per_fabric[0].degraded_tiles, 4);
    assert_eq!(report.per_fabric[0].tile_losses, 1);
    assert!(!report.per_fabric[0].killed, "tile loss is not an outage");
    // 8-tile pool minus 4 lost tiles still fits the small models but the
    // cluster as a whole drops nothing.
    assert_eq!(report.requests_lost, 0);
    assert_eq!(report.serve.completed, report.serve.requests);
}

/// A brownout stretches service on the slowed fabric; the run is
/// deterministic and nothing is lost, the tail just grows.
#[test]
fn brownout_stretches_service_but_loses_nothing() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 400_000, 150_000, 13);
    let mut cfg = ClusterConfig {
        fabrics: 2,
        replicas: 2,
        base: base(Policy::Fcfs, 8),
        ..ClusterConfig::default()
    };
    let clean = serve_cluster(&registry, &trace, &cfg).unwrap();
    cfg.faults = ClusterFaultPlan {
        events: vec![FabricFault {
            fabric: 0,
            at: 0,
            kind: FabricFaultKind::Brownout {
                factor: 4,
                duration: 400_000,
            },
        }],
    };
    let browned = serve_cluster(&registry, &trace, &cfg).unwrap();
    assert_eq!(browned.requests_lost, 0);
    assert_eq!(browned.serve.requests, clean.serve.requests);
    assert!(
        browned.serve.p99_latency_cycles > clean.serve.p99_latency_cycles,
        "a 4x brownout must show up at the tail: {} vs {}",
        browned.serve.p99_latency_cycles,
        clean.serve.p99_latency_cycles
    );
}

// ----------------------------------------------------------- validation

#[test]
fn cluster_validation_rejects_inconsistent_configs_with_typed_errors() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 100_000, 7);
    let check = |cfg: ClusterConfig, needle: &str| {
        match serve_cluster(&registry, &trace, &cfg) {
            Err(ServeError::BadConfig { reason }) => assert!(
                reason.contains(needle),
                "reason `{reason}` should mention `{needle}`"
            ),
            other => panic!("expected BadConfig for `{needle}`, got {other:?}"),
        }
    };
    let ok = ClusterConfig {
        fabrics: 4,
        replicas: 2,
        base: base(Policy::Fcfs, 16),
        ..ClusterConfig::default()
    };
    check(
        ClusterConfig {
            fabrics: 0,
            ..ok.clone()
        },
        "at least one fabric",
    );
    check(
        ClusterConfig {
            replicas: 0,
            ..ok.clone()
        },
        "replica factor",
    );
    check(
        ClusterConfig {
            replicas: 5,
            ..ok.clone()
        },
        "exceeds fabric count",
    );
    check(
        ClusterConfig {
            heartbeat_interval: 0,
            ..ok.clone()
        },
        "heartbeat interval",
    );
    check(
        ClusterConfig {
            missed_heartbeats: 0,
            ..ok.clone()
        },
        "missed-heartbeat",
    );
    check(
        ClusterConfig {
            base: base(Policy::Partitioned, 16),
            ..ok.clone()
        },
        "fcfs or sjf",
    );
    check(
        ClusterConfig {
            base: ServeConfig {
                overload: Some(maicc_serve::overload::OverloadConfig::default()),
                ..base(Policy::Fcfs, 16)
            },
            ..ok.clone()
        },
        "overload loop",
    );
    check(
        ClusterConfig {
            faults: kill(4, 0),
            ..ok.clone()
        },
        "targets fabric 4",
    );
    check(
        ClusterConfig {
            faults: ClusterFaultPlan {
                events: vec![FabricFault {
                    fabric: 0,
                    at: 10,
                    kind: FabricFaultKind::Brownout {
                        factor: 0,
                        duration: 100,
                    },
                }],
            },
            ..ok.clone()
        },
        "slow factor 0",
    );
    check(
        ClusterConfig {
            faults: ClusterFaultPlan {
                events: vec![FabricFault {
                    fabric: 0,
                    at: 10,
                    kind: FabricFaultKind::TileLoss { tiles: 0 },
                }],
            },
            ..ok.clone()
        },
        "retires 0 tiles",
    );
    check(
        ClusterConfig {
            shed: Some(ClusterShedConfig {
                capacity_fraction: 0.0,
                shed_late: false,
            }),
            ..ok.clone()
        },
        "capacity fraction",
    );
    check(
        ClusterConfig {
            shed: Some(ClusterShedConfig {
                capacity_fraction: 1.5,
                shed_late: false,
            }),
            ..ok
        },
        "capacity fraction",
    );
}
