//! Property test: a serving run is a pure function of its trace seed and
//! config — the report's JSON bytes are identical whichever simulation
//! engine drives the fabric and however many node-stepping threads each
//! simulation uses.

use maicc_serve::registry::three_model_mix;
use maicc_serve::server::{serve, Policy, ServeConfig};
use maicc_serve::trace::Trace;
use maicc_sim::stream::Engine;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn prop_report_bytes_invariant_across_engines_and_threads(
        seed in 0u64..10_000,
        policy_idx in 0usize..2,
        bursty in any::<bool>(),
    ) {
        let (registry, loads) = three_model_mix();
        let trace = if bursty {
            Trace::bursty(&loads, 150_000, 60_000, seed)
        } else {
            Trace::poisson(&loads, 150_000, seed)
        };
        let policy = [Policy::Fcfs, Policy::Sjf][policy_idx];
        let mut baseline: Option<String> = None;
        for engine in [Engine::EventDriven, Engine::CycleAccurate] {
            for threads in [1usize, 2, 4, 8] {
                let cfg = ServeConfig {
                    policy,
                    engine,
                    threads,
                    pool_tiles: 16,
                    ..ServeConfig::default()
                };
                let json = serve(&registry, &trace, &cfg).unwrap().to_json();
                match &baseline {
                    None => baseline = Some(json),
                    Some(b) => prop_assert_eq!(
                        b,
                        &json,
                        "seed {} policy {:?} diverged under {:?} x {} threads",
                        seed,
                        policy,
                        engine,
                        threads
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The overload-hardened loop keeps the same guarantee under the
    /// full stress kit — bounded queues, shedding, tiers, preemption,
    /// retries, brownout, and mid-run tile retirement all engaged.
    #[test]
    fn prop_overload_report_bytes_invariant(
        seed in 0u64..10_000,
        policy_idx in 0usize..2,
    ) {
        use maicc_serve::overload::RetryBudget;
        use maicc_serve::registry::overload_mix;
        use maicc_serve::server::FaultConfig;
        use maicc_sim::stream::RecoveryPolicy;

        let (registry, loads, overload) = overload_mix();
        let trace = Trace::bursty(&loads, 150_000, 60_000, seed);
        // Hard-fault the first arrival so remap recovery churns the pool
        // while the overload machinery runs.
        let fail_at: Vec<u64> =
            trace.requests.first().map(|r| r.id).into_iter().collect();
        let policy = [Policy::Fcfs, Policy::Sjf][policy_idx];
        let mut baseline: Option<String> = None;
        for engine in [Engine::EventDriven, Engine::CycleAccurate] {
            for threads in [1usize, 2, 4, 8] {
                let cfg = ServeConfig {
                    policy,
                    engine,
                    threads,
                    pool_tiles: 10,
                    recovery: Some(RecoveryPolicy {
                        max_replays: 8,
                        remap: true,
                        checkpoint_values: 8,
                    }),
                    fault: Some(FaultConfig {
                        fail_at_requests: fail_at.clone(),
                        ..FaultConfig::default()
                    }),
                    overload: Some(overload.clone()),
                    retry_budget: Some(RetryBudget::default()),
                    ..ServeConfig::default()
                };
                let json = serve(&registry, &trace, &cfg).unwrap().to_json();
                match &baseline {
                    None => baseline = Some(json),
                    Some(b) => prop_assert_eq!(
                        b,
                        &json,
                        "seed {} policy {:?} diverged under {:?} x {} threads",
                        seed,
                        policy,
                        engine,
                        threads
                    ),
                }
            }
        }
    }
}
