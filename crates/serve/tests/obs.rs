//! Soak-run observability tests: the interval telemetry stream is a
//! pure function of the workload (byte-identical across engines and
//! thread counts, churn included), its per-interval counters sum
//! exactly to the final report totals, degenerate horizons still emit a
//! well-formed window, and the quick-soak stream is pinned to a
//! committed fixture.

use maicc_serve::cache::WeightCacheConfig;
use maicc_serve::cluster::{
    serve_cluster_with_obs, ClusterConfig, ClusterFaultPlan, ClusterShedConfig,
};
use maicc_serve::overload::Tier;
use maicc_serve::registry::three_model_mix;
use maicc_serve::server::{serve_with_obs, Policy, ServeConfig};
use maicc_serve::trace::Trace;
use maicc_sim::stream::Engine;
use proptest::prelude::*;

/// The `maicc soak --quick` shape: 4 fabrics with 2-way replicas, a
/// diurnal keyword-headed Zipf day, and seeded fault churn.
fn soak_cfg(engine: Engine, threads: usize, horizon: u64, seed: u64) -> ClusterConfig {
    ClusterConfig {
        fabrics: 4,
        replicas: 2,
        heartbeat_interval: 20_000,
        prewarm_replicas: true,
        tiers: vec![
            ("vision".into(), Tier::Hard),
            ("assist".into(), Tier::Soft),
            ("keyword".into(), Tier::BestEffort),
        ],
        shed: Some(ClusterShedConfig::default()),
        faults: ClusterFaultPlan::churn(4, horizon, 150_000, seed),
        base: ServeConfig {
            policy: Policy::Sjf,
            engine,
            threads,
            pool_tiles: 16,
            weight_cache: Some(WeightCacheConfig::default()),
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn soak_trace(horizon: u64, seed: u64) -> Trace {
    let (_, loads) = three_model_mix();
    let mut ranked = loads;
    ranked.reverse(); // small (keyword) first — the Zipf head
    Trace::diurnal(&ranked, horizon, 12_000, 1.1, 200_000, seed)
}

/// Reads the integer after `"key": ` on one JSONL line. The leading
/// quote keeps `"hits"` from matching inside `"llc_hits"`.
fn field(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat).unwrap_or_else(|| panic!("no {key} in {line}"));
    line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn sum(jsonl: &str, key: &str) -> u64 {
    jsonl.lines().map(|l| field(l, key)).sum()
}

// ----------------------------------------------------------- determinism

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// The telemetry stream of a churning cluster run is byte-identical
    /// across both engines and node-stepping thread counts {1, 2, 4, 8}
    /// — the same bar the reports meet, now holding per-interval.
    #[test]
    fn prop_soak_jsonl_invariant_across_engines_and_threads(
        seed in 0u64..10_000,
    ) {
        let horizon = 300_000;
        let (registry, _) = three_model_mix();
        let trace = soak_trace(horizon, seed);
        let mut baseline: Option<String> = None;
        for engine in [Engine::EventDriven, Engine::CycleAccurate] {
            for threads in [1usize, 2, 4, 8] {
                let cfg = soak_cfg(engine, threads, horizon, seed);
                let (_, jsonl) =
                    serve_cluster_with_obs(&registry, &trace, &cfg, 50_000).unwrap();
                match &baseline {
                    None => baseline = Some(jsonl),
                    Some(b) => prop_assert_eq!(
                        b, &jsonl,
                        "soak stream diverged under {:?} x {} threads",
                        engine, threads
                    ),
                }
            }
        }
    }
}

// -------------------------------------------------------- reconciliation

/// Every per-interval counter in the cluster soak stream sums exactly
/// to the corresponding final `ClusterReport` total — the stream is the
/// report, sliced by time, with nothing double-counted or dropped.
#[test]
fn soak_interval_counters_sum_to_cluster_report_totals() {
    let horizon = 600_000;
    let (registry, _) = three_model_mix();
    let trace = soak_trace(horizon, 42);
    let cfg = soak_cfg(Engine::EventDriven, 1, horizon, 42);
    let (report, jsonl) =
        serve_cluster_with_obs(&registry, &trace, &cfg, 50_000).unwrap();
    assert!(report.failovers > 0, "churn produced no failovers");
    assert_eq!(sum(&jsonl, "arrivals"), report.serve.requests);
    assert_eq!(sum(&jsonl, "completions"), report.serve.completed);
    assert_eq!(sum(&jsonl, "sheds"), report.cluster_shed);
    assert_eq!(sum(&jsonl, "lost"), report.requests_lost);
    assert_eq!(sum(&jsonl, "failovers"), report.failovers);
    let cache = report.serve.cache.as_ref().expect("soak runs cached");
    assert_eq!(sum(&jsonl, "hits"), cache.hits);
    assert_eq!(sum(&jsonl, "misses"), cache.misses);
    assert_eq!(sum(&jsonl, "evictions"), cache.evictions);
    assert_eq!(sum(&jsonl, "llc_hits"), cache.llc_hits);
    assert_eq!(sum(&jsonl, "prefetch_issued"), cache.prefetch_issued);
    // Tile retirements across the stream match the per-fabric totals.
    let degraded: u64 = report
        .per_fabric
        .iter()
        .map(|f| f.degraded_tiles as u64)
        .sum();
    assert_eq!(sum(&jsonl, "retired_tiles"), degraded);
}

/// The single-fabric stream reconciles with its `ServeReport` the same
/// way, including the ECC/NoC counters the admission hook attributes.
#[test]
fn single_fabric_interval_counters_sum_to_serve_report_totals() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::bursty(&loads, 400_000, 150_000, 13);
    let cfg = ServeConfig {
        policy: Policy::Sjf,
        pool_tiles: 8,
        weight_cache: Some(WeightCacheConfig::default()),
        ..ServeConfig::default()
    };
    let (report, jsonl) = serve_with_obs(&registry, &trace, &cfg, 60_000).unwrap();
    assert_eq!(sum(&jsonl, "arrivals"), report.requests);
    assert_eq!(sum(&jsonl, "completions"), report.completed);
    assert_eq!(sum(&jsonl, "sheds"), report.shed);
    assert_eq!(sum(&jsonl, "lost"), report.unrecoverable);
    let cache = report.cache.as_ref().expect("run was cached");
    assert_eq!(sum(&jsonl, "hits"), cache.hits);
    assert_eq!(sum(&jsonl, "misses"), cache.misses);
    // Windows tile the run: consecutive, starting at zero, each one
    // interval wide.
    for (k, line) in jsonl.lines().enumerate() {
        assert_eq!(field(line, "interval"), k as u64);
        assert_eq!(field(line, "start"), k as u64 * 60_000);
        assert_eq!(field(line, "end"), (k as u64 + 1) * 60_000);
    }
}

// ------------------------------------------------------------ edge cases

/// A horizon shorter than one interval still yields exactly one
/// well-formed window holding the whole run.
#[test]
fn horizon_shorter_than_one_interval_yields_a_single_window() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 50_000, 7);
    let cfg = ServeConfig {
        pool_tiles: 16,
        ..ServeConfig::default()
    };
    let (report, jsonl) =
        serve_with_obs(&registry, &trace, &cfg, 10_000_000).unwrap();
    assert_eq!(jsonl.lines().count(), 1, "expected one window: {jsonl}");
    let line = jsonl.lines().next().unwrap();
    assert_eq!(field(line, "interval"), 0);
    assert_eq!(field(line, "start"), 0);
    assert_eq!(field(line, "arrivals"), report.requests);
    assert_eq!(field(line, "completions"), report.completed);
}

/// An empty trace still emits one (all-zero) window rather than an
/// empty stream — downstream analyzers never see zero lines.
#[test]
fn empty_trace_emits_one_zero_window() {
    let (registry, _) = three_model_mix();
    let trace = Trace::poisson(&[], 100_000, 7);
    let cfg = ServeConfig::default();
    let (report, jsonl) = serve_with_obs(&registry, &trace, &cfg, 50_000).unwrap();
    assert_eq!(report.requests, 0);
    assert_eq!(jsonl.lines().count(), 1);
    let line = jsonl.lines().next().unwrap();
    assert_eq!(field(line, "arrivals"), 0);
    assert_eq!(field(line, "completions"), 0);
}

// --------------------------------------------------------------- fixture

/// The quick-soak stream is pinned byte-for-byte to a committed
/// fixture, so any change to the recorder's schema, the diurnal
/// generator, the churn plan, or the cluster loop shows up as a
/// reviewable fixture diff. CI's soak-smoke job feeds the same fixture
/// to `soak_diff` against a fresh run and expects zero drifts.
#[test]
fn quick_soak_stream_matches_pinned_fixture() {
    let horizon = 600_000;
    let (registry, _) = three_model_mix();
    let trace = soak_trace(horizon, 42);
    let cfg = soak_cfg(Engine::EventDriven, 1, horizon, 42);
    let (_, jsonl) = serve_cluster_with_obs(&registry, &trace, &cfg, 50_000).unwrap();
    assert_eq!(jsonl, include_str!("fixtures/soak_clean.jsonl"));
}

/// Regenerates the pinned soak fixture. Run explicitly (`cargo test -p
/// maicc-serve --test obs -- --ignored regenerate`) when the stream
/// changes deliberately, and commit the diff.
#[test]
#[ignore = "writes tests/fixtures/soak_clean.jsonl"]
fn regenerate_soak_fixture() {
    let horizon = 600_000;
    let (registry, _) = three_model_mix();
    let trace = soak_trace(horizon, 42);
    let cfg = soak_cfg(Engine::EventDriven, 1, horizon, 42);
    let (_, jsonl) = serve_cluster_with_obs(&registry, &trace, &cfg, 50_000).unwrap();
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/soak_clean.jsonl"),
        jsonl,
    )
    .unwrap();
}
