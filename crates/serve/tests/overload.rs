//! Overload-hardening integration tests: the 2×-overload acceptance
//! scenario under continuous fault churn, retry of unrecoverable runs,
//! retry-budget exhaustion, Hard-over-BestEffort preemption with
//! checkpoint resume, and the brownout best-effort cap.

use maicc_serve::overload::{BrownoutConfig, OverloadConfig, RetryBudget, Tier};
use maicc_serve::registry::{overload_mix, three_model_mix};
use maicc_serve::server::{serve, FaultConfig, Policy, ServeConfig};
use maicc_serve::trace::{Request, Trace};
use maicc_sim::stream::{Engine, RecoveryPolicy};

fn req(tenant: &str, model: &str, arrival: u64, deadline: Option<u64>) -> Request {
    Request {
        id: 0, // re-assigned by `from_requests`
        tenant: tenant.into(),
        model: model.into(),
        arrival,
        deadline,
    }
}

/// The PR's acceptance scenario: a seeded bursty trace offering ~2× the
/// 10-tile pool's sustainable load, with hard faults injected into early
/// assist requests so remap recovery keeps retiring tiles mid-service.
/// The Hard tenant (`vision`) must come through unscathed: zero
/// unrecoverable requests and p99 within its deadline, while the
/// overload machinery visibly sheds other work — and the whole report
/// must stay byte-identical across engines and thread counts.
#[test]
fn acceptance_two_x_overload_with_fault_churn() {
    let (registry, loads, overload) = overload_mix();
    let trace = Trace::bursty(&loads, 1_200_000, 200_000, 42);
    // Fault the two earliest vision arrivals: the Hard tier is always
    // admitted (lower tiers queue and shed under 2x overload), so the
    // dead slices reliably reach the fabric — and remap recovery is
    // exactly how Hard traffic rides out hardware churn: the tile
    // retires, the run replays and completes.
    let fail_at: Vec<u64> = trace
        .requests
        .iter()
        .filter(|r| r.tenant == "vision")
        .take(2)
        .map(|r| r.id)
        .collect();
    assert_eq!(fail_at.len(), 2, "trace must offer vision requests");
    let config = ServeConfig {
        policy: Policy::Sjf,
        pool_tiles: 10,
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: true,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: fail_at,
            ..FaultConfig::default()
        }),
        overload: Some(overload),
        retry_budget: Some(RetryBudget::default()),
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &config).unwrap();

    assert_eq!(report.completed + report.dropped, report.requests);
    assert!(
        report.degraded_tiles >= 1,
        "remap recovery should retire at least one tile"
    );
    assert!(report.shed > 0, "2x overload must shed something");

    let vision = report
        .tenants
        .iter()
        .find(|t| t.tenant == "vision")
        .expect("vision tenant present");
    assert_eq!(
        vision.unrecoverable, 0,
        "no Hard-tenant request may be dropped unrecoverably"
    );
    assert!(
        vision.p99_latency_cycles <= 600_000,
        "Hard-tenant p99 {} busts its 600k deadline",
        vision.p99_latency_cycles
    );

    // The new counters surface in the SLO JSON at fleet, tenant, and
    // per-request level.
    let json = report.to_json();
    for key in ["\"shed\"", "\"unrecoverable\"", "\"preemptions\"", "\"retries\""] {
        assert!(json.contains(key), "SLO JSON missing {key}");
    }
    assert!(json.contains("\"tier\": \"hard\""), "tier labels in JSON");

    // Byte-identical across the engine × thread matrix (the proptest in
    // tests/determinism.rs sweeps seeds; this pins the acceptance seed).
    let alt = ServeConfig {
        engine: Engine::CycleAccurate,
        threads: 4,
        ..config.clone()
    };
    let alt_json = serve(&registry, &trace, &alt).unwrap().to_json();
    assert_eq!(json, alt_json, "report must not depend on engine/threads");
}

/// An unrecoverable run (dead slice, remap disabled) re-enters admission
/// after backoff at elevated priority and completes on clean hardware.
#[test]
fn unrecoverable_run_is_retried_and_completes() {
    let (registry, _) = three_model_mix();
    let trace = Trace::from_requests(vec![req("solo", "small", 0, None)]);
    let config = ServeConfig {
        pool_tiles: 10,
        // remap off: a dead slice is permanent, so the attempt errors out
        // instead of retiring the tile.
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: false,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: vec![0],
            ..FaultConfig::default()
        }),
        overload: Some(OverloadConfig::default()),
        retry_budget: Some(RetryBudget::default()),
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &config).unwrap();
    assert_eq!(report.completed, 1);
    assert_eq!(report.retries, 1, "exactly one retry");
    assert_eq!(report.unrecoverable, 0);
    let o = &report.outcomes[0];
    assert!(o.ok && !o.dropped);
    assert_eq!(o.retries, 1);
    // The retry re-entered above its original (unlisted → Soft) tier.
    assert_eq!(o.tier, Some(Tier::Hard));
    // Backoff delay is visible as queueing: the failed attempt burned no
    // fabric time but the request waited out base_backoff_cycles.
    assert!(
        o.queue_cycles >= RetryBudget::default().base_backoff_cycles,
        "queue {} should include the backoff wait",
        o.queue_cycles
    );
}

/// Without a retry budget the same unrecoverable run drops — and the
/// drop is counted as `unrecoverable`, not `shed`.
#[test]
fn without_retry_budget_unrecoverable_run_drops() {
    let (registry, _) = three_model_mix();
    let trace = Trace::from_requests(vec![req("solo", "small", 0, None)]);
    let config = ServeConfig {
        pool_tiles: 10,
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: false,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: vec![0],
            ..FaultConfig::default()
        }),
        overload: Some(OverloadConfig::default()),
        retry_budget: None,
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &config).unwrap();
    assert_eq!(report.completed, 0);
    assert_eq!(report.dropped, 1);
    assert_eq!(report.shed, 0);
    assert_eq!(report.unrecoverable, 1);
    let o = &report.outcomes[0];
    assert!(o.dropped && !o.shed && o.unrecoverable());
}

/// A per-request retry cap of zero exhausts immediately even when a
/// budget object is present.
#[test]
fn zero_retry_cap_exhausts_immediately() {
    let (registry, _) = three_model_mix();
    let trace = Trace::from_requests(vec![req("solo", "small", 0, None)]);
    let config = ServeConfig {
        pool_tiles: 10,
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: false,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: vec![0],
            ..FaultConfig::default()
        }),
        overload: Some(OverloadConfig::default()),
        retry_budget: Some(RetryBudget {
            max_retries_per_request: 0,
            ..RetryBudget::default()
        }),
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &config).unwrap();
    assert_eq!(report.unrecoverable, 1);
    assert_eq!(report.retries, 0);
}

/// A Hard arrival that cannot place evicts the most recent BestEffort
/// runner; the victim resumes from its checkpoint and still completes.
#[test]
fn hard_arrival_preempts_best_effort_and_victim_resumes() {
    let (registry, _) = three_model_mix();
    // 10-tile pool: the 6-tile best-effort run leaves only 4 free, so
    // the 7-tile Hard arrival at 10k cycles cannot place without
    // eviction.
    let trace = Trace::from_requests(vec![
        req("bg", "two_layer", 0, None),
        req("fg", "resnet18_segment", 10_000, None),
    ]);
    let config = ServeConfig {
        pool_tiles: 10,
        // Recovery arms the checkpoint machinery the victim resumes from.
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: true,
            checkpoint_values: 8,
        }),
        overload: Some(OverloadConfig {
            tiers: vec![("fg".into(), Tier::Hard), ("bg".into(), Tier::BestEffort)],
            ..OverloadConfig::default()
        }),
        ..ServeConfig::default()
    };
    let report = serve(&registry, &trace, &config).unwrap();
    assert_eq!(report.completed, 2, "both requests complete");
    assert_eq!(report.preemptions, 1);

    let fg = report.outcomes.iter().find(|o| o.tenant == "fg").unwrap();
    let bg = report.outcomes.iter().find(|o| o.tenant == "bg").unwrap();
    assert!(fg.ok && bg.ok);
    assert_eq!(fg.queue_cycles, 0, "the Hard request admits on arrival");
    assert_eq!(bg.preemptions, 1);
    // The victim's service time spans both segments: the 10k cycles it
    // executed before eviction plus the resumed remainder.
    assert!(
        bg.service_cycles > 10_000,
        "victim service {} must cover both segments",
        bg.service_cycles
    );
    assert!(bg.finished > fg.finished, "victim resumes after the Hard run");

    // With preemption disabled the Hard request head-blocks instead.
    let no_preempt = ServeConfig {
        overload: Some(OverloadConfig {
            preempt: false,
            tiers: vec![("fg".into(), Tier::Hard), ("bg".into(), Tier::BestEffort)],
            ..OverloadConfig::default()
        }),
        ..config
    };
    let rep2 = serve(&registry, &trace, &no_preempt).unwrap();
    assert_eq!(rep2.preemptions, 0);
    let fg2 = rep2.outcomes.iter().find(|o| o.tenant == "fg").unwrap();
    assert!(
        fg2.queue_cycles > 0,
        "without preemption the Hard request waits for the best-effort run"
    );
}

/// Sustained occupancy above the high-water mark for a full window
/// shrinks best-effort grants: the scavenger waits out the brownout even
/// though free tiles exist, and admits promptly once brownout is off.
#[test]
fn brownout_caps_best_effort_grants() {
    let (registry, _) = three_model_mix();
    // Staggered Soft two_layer runs keep 16-tile pool occupancy at or
    // above 6/16 = 0.375 continuously from cycle 0; the best-effort
    // 3-tile request arrives with 4 tiles free either way.
    let trace = Trace::from_requests(vec![
        req("s", "two_layer", 0, None),
        req("s", "two_layer", 20_000, None),
        req("s", "two_layer", 40_000, None),
        req("s", "two_layer", 60_000, None),
        req("b", "small", 70_000, None),
    ]);
    let brownout_cfg = ServeConfig {
        pool_tiles: 16,
        overload: Some(OverloadConfig {
            tiers: vec![("b".into(), Tier::BestEffort)],
            brownout: Some(BrownoutConfig {
                high_water: 0.3,
                window_cycles: 50_000,
                // floor(16 × 0.15) = 2 tiles: below the small net's 3.
                best_effort_fraction: 0.15,
            }),
            ..OverloadConfig::default()
        }),
        ..ServeConfig::default()
    };
    let control_cfg = ServeConfig {
        overload: Some(OverloadConfig {
            tiers: vec![("b".into(), Tier::BestEffort)],
            brownout: None,
            ..OverloadConfig::default()
        }),
        ..brownout_cfg.clone()
    };
    let browned = serve(&registry, &trace, &brownout_cfg).unwrap();
    let control = serve(&registry, &trace, &control_cfg).unwrap();
    assert_eq!(browned.completed, 5, "brownout delays, never drops");
    assert_eq!(control.completed, 5);
    let bb = browned.outcomes.iter().find(|o| o.tenant == "b").unwrap();
    let cb = control.outcomes.iter().find(|o| o.tenant == "b").unwrap();
    assert_eq!(cb.queue_cycles, 0, "control admits the scavenger on arrival");
    assert!(
        bb.queue_cycles > 0,
        "brownout must hold the best-effort request back"
    );
    // Soft traffic is untouched by the brownout cap.
    for (x, y) in browned.outcomes.iter().zip(control.outcomes.iter()) {
        if x.tenant == "s" {
            assert_eq!(x.latency_cycles, y.latency_cycles);
        }
    }
}
