//! Mid-run tile retirement under every scheduling policy: a hard fault
//! retires a tile from the pool while later requests are still queued,
//! and the loop must keep every invariant — the pool shrinks, no
//! completion is double-counted, and the SLO report stays byte-identical
//! across simulation engines.

use maicc_serve::registry::three_model_mix;
use maicc_serve::server::{serve, FaultConfig, Policy, ServeConfig};
use maicc_serve::trace::{Request, Trace};
use maicc_sim::stream::{Engine, RecoveryPolicy};
use std::collections::BTreeSet;

/// The PR 5 re-carve trace: the faulted 3-tile run retires a tile while
/// the 7-tile segment is still to come, so every policy has to schedule
/// around the casualty.
fn churn_trace() -> Trace {
    let mk = |tenant: &str, model: &str, arrival: u64| Request {
        id: 0,
        tenant: tenant.into(),
        model: model.into(),
        arrival,
        deadline: None,
    };
    Trace::from_requests(vec![
        mk("vision", "small", 0), // id 0: the faulted run
        mk("keyword", "small", 50_000),
        mk("vision", "resnet18_segment", 100_000),
        mk("keyword", "small", 150_000),
    ])
}

fn churn_cfg(policy: Policy) -> ServeConfig {
    ServeConfig {
        policy,
        pool_tiles: 16,
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: true,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: vec![0],
            ..FaultConfig::default()
        }),
        ..ServeConfig::default()
    }
}

#[test]
fn retirement_holds_invariants_under_every_policy() {
    let (registry, _) = three_model_mix();
    let trace = churn_trace();
    for policy in [
        Policy::Fcfs,
        Policy::Sjf,
        Policy::Partitioned,
        Policy::TimeShared,
    ] {
        let config = churn_cfg(policy);
        let report = serve(&registry, &trace, &config).unwrap();

        // The pool shrank: remap recovery retired at least one tile.
        assert!(
            report.degraded_tiles >= 1,
            "{policy:?}: fault should retire a tile"
        );
        // Every request got exactly one outcome — no double-counted
        // completions, no silently vanished requests.
        assert_eq!(
            report.completed + report.dropped,
            report.requests,
            "{policy:?}: outcome conservation"
        );
        assert_eq!(report.outcomes.len(), trace.requests.len());
        let ids: BTreeSet<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), trace.requests.len(), "{policy:?}: duplicate ids");
        // On the 16-tile pool one retirement never strands the segment.
        assert_eq!(report.completed, report.requests, "{policy:?}: all drain");
        let victim = report.outcomes.iter().find(|o| o.id == 0).unwrap();
        assert!(victim.ok, "{policy:?}: faulted run replays to a correct result");

        // Byte-identical across engines and thread counts even with the
        // retirement mid-run.
        let json = report.to_json();
        for (engine, threads) in [(Engine::CycleAccurate, 1), (Engine::EventDriven, 4)] {
            let alt = ServeConfig {
                engine,
                threads,
                ..churn_cfg(policy)
            };
            let alt_json = serve(&registry, &trace, &alt).unwrap().to_json();
            assert_eq!(json, alt_json, "{policy:?}: {engine:?}×{threads} diverged");
        }
    }
}

/// The same churn through the overload-hardened loop (Fcfs/Sjf only —
/// the other two reject overload configs): retirement composes with
/// admission control and the report still drains conserving outcomes.
#[test]
fn retirement_holds_invariants_under_overload_loop() {
    use maicc_serve::overload::OverloadConfig;
    let (registry, _) = three_model_mix();
    let trace = churn_trace();
    for policy in [Policy::Fcfs, Policy::Sjf] {
        let config = ServeConfig {
            overload: Some(OverloadConfig::default()),
            ..churn_cfg(policy)
        };
        let report = serve(&registry, &trace, &config).unwrap();
        assert!(report.degraded_tiles >= 1, "{policy:?}: tile retires");
        assert_eq!(report.completed, report.requests, "{policy:?}: all drain");
        let ids: BTreeSet<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), trace.requests.len(), "{policy:?}: duplicate ids");

        let json = report.to_json();
        let alt = ServeConfig {
            engine: Engine::CycleAccurate,
            threads: 4,
            overload: Some(OverloadConfig::default()),
            ..churn_cfg(policy)
        };
        let alt_json = serve(&registry, &trace, &alt).unwrap().to_json();
        assert_eq!(json, alt_json, "{policy:?}: engine/thread divergence");
    }
}
