//! End-to-end serving tests: policies, SLO accounting, error paths, and
//! fault-driven pool degradation.

use maicc_serve::registry::three_model_mix;
use maicc_serve::server::{serve, FaultConfig, Policy, ServeConfig};
use maicc_serve::trace::{Request, Trace};
use maicc_serve::ServeError;
use maicc_sim::stream::Engine;
use maicc_sim::RecoveryPolicy;

fn cfg(policy: Policy, pool_tiles: usize) -> ServeConfig {
    ServeConfig {
        policy,
        pool_tiles,
        ..ServeConfig::default()
    }
}

#[test]
fn fcfs_completes_everything_and_matches_golden() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 400_000, 7);
    assert!(trace.requests.len() >= 5, "trace too sparse to be interesting");
    let report = serve(&registry, &trace, &cfg(Policy::Fcfs, 16)).unwrap();
    assert_eq!(report.requests, trace.requests.len() as u64);
    assert_eq!(report.completed, report.requests);
    assert_eq!(report.dropped, 0);
    assert!(report.outcomes.iter().all(|o| o.ok), "every ofmap matches golden");
    assert!(report.makespan_cycles > 0);
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    assert!(report.energy_pj_per_request > 0.0);
    // Latency decomposes: queue + service = latency for completed runs.
    for o in &report.outcomes {
        assert_eq!(o.queue_cycles + o.service_cycles, o.latency_cycles, "req {}", o.id);
        assert!(o.admitted >= o.arrival);
        assert_eq!(o.finished, o.admitted + o.service_cycles);
    }
    // All three tenants are represented.
    let names: Vec<&str> = report.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(names, ["assist", "keyword", "vision"]);
}

#[test]
fn report_bytes_identical_across_engines_and_threads() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 250_000, 11);
    let mut baseline: Option<String> = None;
    for engine in [Engine::EventDriven, Engine::CycleAccurate] {
        for threads in [1, 4] {
            let config = ServeConfig {
                engine,
                threads,
                ..cfg(Policy::Fcfs, 16)
            };
            let json = serve(&registry, &trace, &config).unwrap().to_json();
            match &baseline {
                None => baseline = Some(json),
                Some(b) => assert_eq!(
                    b, &json,
                    "report diverged under {engine:?} x {threads} threads"
                ),
            }
        }
    }
}

#[test]
fn sjf_and_fcfs_tail_latency_diverge_on_bursty_trace() {
    let (registry, loads) = three_model_mix();
    // A tight pool (8 tiles: only one medium/large model at a time)
    // under bursty load builds real queues, so admission order shows up
    // at the tail.
    let trace = Trace::bursty(&loads, 600_000, 200_000, 13);
    let fcfs = serve(&registry, &trace, &cfg(Policy::Fcfs, 8)).unwrap();
    let sjf = serve(&registry, &trace, &cfg(Policy::Sjf, 8)).unwrap();
    assert_eq!(fcfs.requests, sjf.requests);
    assert_ne!(
        fcfs.p99_latency_cycles, sjf.p99_latency_cycles,
        "policies should reorder the tail under contention"
    );
    // SJF favours the short keyword jobs over FCFS.
    let kw = |r: &maicc_serve::slo::ServeReport| {
        r.tenants
            .iter()
            .find(|t| t.tenant == "keyword")
            .unwrap()
            .p99_latency_cycles
    };
    assert!(
        kw(&sjf) <= kw(&fcfs),
        "SJF keyword p99 {} should not exceed FCFS {}",
        kw(&sjf),
        kw(&fcfs)
    );
}

#[test]
fn partitioned_and_time_shared_complete_the_mix() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 400_000, 7);
    // 16 tiles = exactly the sum of the three footprints (7 + 6 + 3).
    let part = serve(&registry, &trace, &cfg(Policy::Partitioned, 16)).unwrap();
    assert_eq!(part.completed, part.requests);
    assert_eq!(part.policy, "partitioned");
    let ts = serve(&registry, &trace, &cfg(Policy::TimeShared, 16)).unwrap();
    assert_eq!(ts.completed, ts.requests);
    assert_eq!(ts.policy, "time_shared");
    // Time-sharing serialises the fabric: requests never overlap, so its
    // makespan is at least every other policy's.
    assert!(ts.makespan_cycles >= part.makespan_cycles);
}

#[test]
fn partitioned_rejects_a_pool_that_cannot_hold_all_tenants() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 400_000, 7);
    match serve(&registry, &trace, &cfg(Policy::Partitioned, 10)) {
        Err(ServeError::PoolTooSmall { reason }) => {
            assert!(reason.contains("partition"), "{reason}");
        }
        other => panic!("expected PoolTooSmall, got {other:?}"),
    }
}

#[test]
fn model_wider_than_pool_is_rejected_up_front() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 400_000, 7);
    match serve(&registry, &trace, &cfg(Policy::Fcfs, 3)) {
        Err(ServeError::PoolTooSmall { reason }) => {
            assert!(reason.contains("resnet18_segment"), "{reason}");
        }
        other => panic!("expected PoolTooSmall, got {other:?}"),
    }
}

#[test]
fn unknown_model_is_rejected_up_front() {
    let (registry, _) = three_model_mix();
    let trace = Trace::from_requests(vec![Request {
        id: 0,
        tenant: "ghost".into(),
        model: "nope".into(),
        arrival: 0,
        deadline: None,
    }]);
    match serve(&registry, &trace, &cfg(Policy::Fcfs, 16)) {
        Err(ServeError::UnknownModel { model }) => assert_eq!(model, "nope"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
}

#[test]
fn hard_fault_mid_run_retires_a_tile_from_the_pool() {
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 300_000, 7);
    let first_id = trace.requests[0].id;
    let config = ServeConfig {
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: true,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: vec![first_id],
            ..FaultConfig::default()
        }),
        ..cfg(Policy::Fcfs, 16)
    };
    let report = serve(&registry, &trace, &config).unwrap();
    assert!(
        report.degraded_tiles >= 1,
        "remap recovery should retire the faulted tile"
    );
    assert_eq!(report.completed + report.dropped, report.requests);
    // The faulted request itself still completed correctly via replay.
    let victim = report.outcomes.iter().find(|o| o.id == first_id).unwrap();
    assert!(victim.ok && !victim.dropped);
}

#[test]
fn partitioned_recarves_after_mid_run_retirement() {
    let (registry, _) = three_model_mix();
    // The vision tenant mixes the 7-tile segment with the 3-tile small
    // net, so its region (carved for the segment) has slack for remap
    // recovery to retire a tile while the small net runs. The later
    // segment request only fits if the partition then re-carves around
    // the casualty — under the pre-fix scheduler it head-blocked on the
    // shrunken region and serve() errored with PoolTooSmall.
    let mk = |tenant: &str, model: &str, arrival: u64| Request {
        id: 0,
        tenant: tenant.into(),
        model: model.into(),
        arrival,
        deadline: None,
    };
    let trace = Trace::from_requests(vec![
        mk("vision", "small", 0), // id 0: the faulted run
        mk("keyword", "small", 50_000),
        mk("vision", "resnet18_segment", 100_000),
        mk("keyword", "small", 150_000),
    ]);
    assert_eq!(trace.requests[0].model, "small");
    let config = ServeConfig {
        recovery: Some(RecoveryPolicy {
            max_replays: 8,
            remap: true,
            checkpoint_values: 8,
        }),
        fault: Some(FaultConfig {
            fail_at_requests: vec![0],
            ..FaultConfig::default()
        }),
        ..cfg(Policy::Partitioned, 16)
    };
    let report = serve(&registry, &trace, &config).unwrap();
    assert!(
        report.degraded_tiles >= 1,
        "remap recovery should retire the faulted tile"
    );
    // The re-carve keeps every tenant schedulable: nothing head-blocks
    // on the shrunken region and the whole trace drains.
    assert_eq!(report.completed, report.requests);
    assert_eq!(report.dropped, 0);
    let victim = report.outcomes.iter().find(|o| o.id == 0).unwrap();
    assert!(victim.ok && !victim.dropped, "faulted run replays to a correct result");
}

#[test]
fn deadline_misses_show_up_under_contention() {
    let (registry, loads) = three_model_mix();
    // Serialise everything through a tight pool so the latency-sensitive
    // tenant's 150k-cycle deadline is hard to hold during bursts.
    let trace = Trace::bursty(&loads, 600_000, 200_000, 13);
    let report = serve(&registry, &trace, &cfg(Policy::TimeShared, 8)).unwrap();
    let misses: u64 = report.tenants.iter().map(|t| t.deadline_misses).sum();
    assert!(misses > 0, "expected at least one miss on a bursty tight pool");
    assert!(report.deadline_miss_rate > 0.0);
}

// ----- typed error variants for untrusted input ----------------------
//
// Everything a trace file or a replayed registry can feed the server
// must come back as a typed `ServeError`, never a panic.

#[test]
fn zero_tile_registry_entry_is_rejected() {
    use maicc_serve::registry::ModelEntry;
    let (mut registry, _) = three_model_mix();
    let stream = registry.get("small").unwrap().stream.clone();
    registry.insert_raw(ModelEntry {
        name: "hollow".into(),
        stream,
        tiles: 0, // a corrupt recorded registry
        est_cycles: 1,
        golden: vec![],
        weight_bytes: 0,
        max_tile_weight_bytes: 0,
        weight_image: vec![],
    });
    let trace = Trace::from_requests(vec![Request {
        id: 0,
        tenant: "t".into(),
        model: "hollow".into(),
        arrival: 0,
        deadline: None,
    }]);
    match serve(&registry, &trace, &ServeConfig::default()) {
        Err(ServeError::BadModel { reason }) => {
            assert!(reason.contains("zero-tile"), "{reason}")
        }
        other => panic!("expected BadModel, got {other:?}"),
    }
}

#[test]
fn zero_deadline_is_rejected() {
    let (registry, _) = three_model_mix();
    let trace = Trace::from_requests(vec![Request {
        id: 0,
        tenant: "t".into(),
        model: "small".into(),
        arrival: 0,
        deadline: Some(0),
    }]);
    match serve(&registry, &trace, &ServeConfig::default()) {
        Err(ServeError::BadRequest { id: 0, reason }) => {
            assert!(reason.contains("deadline is 0"), "{reason}")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
}

#[test]
fn deadline_at_or_before_arrival_is_rejected() {
    let (registry, _) = three_model_mix();
    let trace = Trace::from_requests(vec![Request {
        id: 0,
        tenant: "t".into(),
        model: "small".into(),
        arrival: 5_000,
        deadline: Some(5_000), // absolute deadline at the arrival instant
    }]);
    match serve(&registry, &trace, &ServeConfig::default()) {
        Err(ServeError::BadRequest { id: 0, reason }) => {
            assert!(reason.contains("at or before arrival"), "{reason}")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
}

#[test]
fn overload_rejects_unsupported_policies() {
    use maicc_serve::overload::OverloadConfig;
    let (registry, loads) = three_model_mix();
    let trace = Trace::poisson(&loads, 100_000, 7);
    for policy in [Policy::Partitioned, Policy::TimeShared] {
        let config = ServeConfig {
            overload: Some(OverloadConfig::default()),
            ..cfg(policy, 16)
        };
        match serve(&registry, &trace, &config) {
            Err(ServeError::BadConfig { reason }) => {
                assert!(reason.contains("fcfs or sjf"), "{reason}")
            }
            other => panic!("expected BadConfig for {policy:?}, got {other:?}"),
        }
    }
}

#[test]
fn malformed_trace_json_is_a_typed_error() {
    for text in [
        "",                                     // empty
        "{",                                    // truncated
        "[1, 2",                                // not an object
        r#"{"requests": [{"id": "x"}]}"#,       // wrong field type
        r#"{"requests": [{"tenant": "t"}]}"#,   // missing fields
        "{\"requests\": [{\"id\": 0, \"tenant\": \"t\", \"model\": \"m\", \"arrival\": 1e999}]}",
    ] {
        match Trace::from_json(text) {
            Err(ServeError::BadTrace { .. }) => {}
            other => panic!("{text:?}: expected BadTrace, got {other:?}"),
        }
    }
}
