//! Trace-generator edge cases: a rate-0 tenant offers no load (instead
//! of an arrival every cycle), and burst windows longer than the horizon
//! clamp instead of overflowing or escaping `[0, horizon)`.

use maicc_serve::trace::{TenantLoad, Trace};
use proptest::prelude::*;

fn load(tenant: &str, mean_gap: u64) -> TenantLoad {
    TenantLoad {
        tenant: tenant.into(),
        model: "small".into(),
        mean_gap,
        deadline: Some(150_000),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `mean_gap: 0` means "this tenant offers no load": its stream is
    /// empty under both generators, and other tenants are unaffected.
    #[test]
    fn prop_rate_zero_tenant_yields_empty_stream(
        seed in 0u64..100_000,
        horizon in 1u64..500_000,
        bursty in any::<bool>(),
    ) {
        let loads = [load("idle", 0), load("busy", 40_000)];
        let trace = if bursty {
            Trace::bursty(&loads, horizon, 60_000, seed)
        } else {
            Trace::poisson(&loads, horizon, seed)
        };
        prop_assert!(
            trace.requests.iter().all(|r| r.tenant != "idle"),
            "a rate-0 tenant must generate nothing"
        );
        // Sub-streams are independent: waking the idle tenant up must
        // not perturb the busy tenant's arrivals.
        let woken = [load("idle", 50_000), load("busy", 40_000)];
        let with_idle_load = if bursty {
            Trace::bursty(&woken, horizon, 60_000, seed)
        } else {
            Trace::poisson(&woken, horizon, seed)
        };
        let busy = |t: &Trace| -> Vec<u64> {
            t.requests
                .iter()
                .filter(|r| r.tenant == "busy")
                .map(|r| r.arrival)
                .collect()
        };
        prop_assert_eq!(busy(&trace), busy(&with_idle_load));
    }

    /// A burst period longer than the horizon (up to u64::MAX) clamps:
    /// every arrival stays inside `[0, horizon)` and generation
    /// terminates without overflow.
    #[test]
    fn prop_burst_window_longer_than_horizon_clamps(
        seed in 0u64..100_000,
        horizon in 1u64..200_000,
        period_excess in 0u64..3,
    ) {
        // Periods at and beyond the horizon, including near-overflow.
        let period = match period_excess {
            0 => horizon,
            1 => horizon.saturating_mul(7),
            _ => u64::MAX - 1,
        };
        let loads = [load("a", 10_000), load("b", 25_000)];
        let trace = Trace::bursty(&loads, horizon, period, seed);
        prop_assert!(
            trace.requests.iter().all(|r| r.arrival < horizon),
            "arrivals must stay inside the horizon"
        );
        // Ids are dense and orderings canonical.
        for (i, r) in trace.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64);
        }
    }
}

/// The degenerate all-tenants-idle trace is simply empty.
#[test]
fn all_rate_zero_is_empty() {
    let loads = [load("x", 0), load("y", 0)];
    assert!(Trace::poisson(&loads, 1_000_000, 9).requests.is_empty());
    assert!(Trace::bursty(&loads, 1_000_000, 50_000, 9).requests.is_empty());
}

/// A burst period of `u64::MAX` with a long horizon: the on-window is
/// `duty × period`, so generation lives entirely in one on-phase and
/// still terminates inside the horizon.
#[test]
fn max_burst_period_terminates() {
    let loads = [load("a", 5_000)];
    let trace = Trace::bursty(&loads, 300_000, u64::MAX, 3);
    assert!(!trace.requests.is_empty(), "one giant on-phase still admits load");
    assert!(trace.requests.iter().all(|r| r.arrival < 300_000));
}
