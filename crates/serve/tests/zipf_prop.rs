//! Property tests for the Zipf trace generators: determinism across
//! threads, model/tenant bounds, and exponent edge cases.

use proptest::prelude::*;

use maicc_serve::registry::three_model_mix;
use maicc_serve::trace::Trace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed ⇒ byte-identical trace, no matter which OS thread
    /// builds it (the generator owns all of its state; nothing ambient
    /// can leak in).
    #[test]
    fn zipf_is_byte_identical_across_threads(
        seed in 0u64..10_000,
        exponent in 0.0f64..4.0,
    ) {
        let (_registry, loads) = three_model_mix();
        let reference =
            Trace::zipf(&loads, 500_000, 10_000, exponent, seed).to_json();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let loads = loads.clone();
                std::thread::spawn(move || {
                    Trace::zipf(&loads, 500_000, 10_000, exponent, seed)
                        .to_json()
                })
            })
            .collect();
        for h in handles {
            prop_assert_eq!(&reference, &h.join().unwrap());
        }
    }

    /// Every generated request names a tenant/model pair straight out
    /// of `loads` (the rank pick can never run off the end), arrivals
    /// are sorted below the horizon, and ids are dense.
    #[test]
    fn zipf_requests_stay_within_the_registry(
        seed in 0u64..10_000,
        exponent in 0.0f64..6.0,
        horizon in 50_000u64..400_000,
    ) {
        let (registry, loads) = three_model_mix();
        let trace = Trace::zipf(&loads, horizon, 9_000, exponent, seed);
        for (i, r) in trace.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64, "ids are dense");
            prop_assert!(r.arrival < horizon);
            if i > 0 {
                prop_assert!(r.arrival >= trace.requests[i - 1].arrival);
            }
            prop_assert!(
                registry.get(&r.model).is_some(),
                "model `{}` not in the registry", r.model
            );
            prop_assert!(
                loads.iter().any(|l| l.tenant == r.tenant && l.model == r.model),
                "request names a tenant/model pair outside `loads`"
            );
        }
    }

    /// The bursty variant obeys the same bounds and additionally lands
    /// every arrival inside a burst window.
    #[test]
    fn zipf_bursty_confines_arrivals_to_burst_windows(
        seed in 0u64..10_000,
        exponent in 0.0f64..4.0,
    ) {
        let (registry, loads) = three_model_mix();
        let period = 100_000u64;
        let on = period / 4; // BURST_DUTY
        let trace =
            Trace::zipf_bursty(&loads, 500_000, 9_000, exponent, period, seed);
        for r in &trace.requests {
            prop_assert!(r.arrival < 500_000);
            prop_assert!(
                r.arrival % period < on,
                "arrival {} escaped the burst window", r.arrival
            );
            prop_assert!(registry.get(&r.model).is_some());
        }
        // Determinism across threads, same as the plain generator.
        let loads2 = loads.clone();
        let other = std::thread::spawn(move || {
            Trace::zipf_bursty(&loads2, 500_000, 9_000, exponent, period, seed)
                .to_json()
        })
        .join()
        .unwrap();
        prop_assert_eq!(trace.to_json(), other);
    }
}

/// `exponent == 0` is a uniform pick: with enough arrivals every rank
/// shows up, not just the head.
#[test]
fn zipf_exponent_zero_is_uniform() {
    let (_registry, loads) = three_model_mix();
    let trace = Trace::zipf(&loads, 2_000_000, 5_000, 0.0, 42);
    assert!(trace.requests.len() > 100, "need a dense trace");
    for load in &loads {
        let n = trace
            .requests
            .iter()
            .filter(|r| r.model == load.model)
            .count();
        assert!(
            n > trace.requests.len() / 10,
            "uniform pick starved `{}` ({n} of {})",
            load.model,
            trace.requests.len()
        );
    }
}

/// A huge exponent degenerates to the head rank without NaN trouble:
/// `1/(i+1)^1000` underflows to 0.0 for every non-head rank, and the
/// cursor walk must still terminate inside bounds.
#[test]
fn zipf_huge_exponent_degenerates_to_the_head_model() {
    let (_registry, loads) = three_model_mix();
    let trace = Trace::zipf(&loads, 2_000_000, 5_000, 1_000.0, 42);
    assert!(trace.requests.len() > 100, "need a dense trace");
    for r in &trace.requests {
        assert_eq!(
            r.model, loads[0].model,
            "rank 0 must absorb the whole stream at s=1000"
        );
    }
}

/// Degenerate inputs yield an empty trace, not a panic or a spin.
#[test]
fn zipf_empty_inputs_yield_empty_traces() {
    let (_registry, loads) = three_model_mix();
    assert!(Trace::zipf(&[], 100_000, 5_000, 1.0, 1).requests.is_empty());
    assert!(Trace::zipf(&loads, 100_000, 0, 1.0, 1).requests.is_empty());
    assert!(Trace::zipf(&loads, 0, 5_000, 1.0, 1).requests.is_empty());
    assert!(Trace::zipf_bursty(&[], 100_000, 5_000, 1.0, 50_000, 1)
        .requests
        .is_empty());
    assert!(Trace::zipf_bursty(&loads, 100_000, 0, 1.0, 50_000, 1)
        .requests
        .is_empty());
}
