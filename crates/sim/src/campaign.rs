//! Fault-injection campaigns over the streaming simulator.
//!
//! A [`FaultCampaign`] sweeps fault rates over one workload — by default a
//! downscaled ResNet-18 segment ([`StreamConfig::resnet18_segment`]) —
//! running the full bit-level streaming simulation once per
//! [`CampaignPoint`] and comparing every completed run against the golden
//! `maicc-nn` reference. Each run is classified:
//!
//! * **masked** — the run completed and the output is bit-identical to the
//!   golden model (the injected faults were architecturally absorbed);
//! * **SDC** — silent data corruption: the run completed but the output
//!   differs;
//! * **detected** — a component reported the fault as a typed error (a
//!   dead CMem slice answering a read, or the cycle-budget watchdog);
//! * **degraded** — injected NoC faults lost traffic, so the workload
//!   quiesced early with a typed [`SimError::Degraded`] instead of
//!   hanging.
//!
//! The report is serde-serialisable and additionally renders itself as
//! JSON via [`CampaignReport::to_json`]. A zero-fault point is guaranteed
//! bit- and cycle-identical to the clean baseline.

use crate::stream::{Engine, RecoveryPolicy, StreamConfig, StreamSim};
use crate::SimError;
use maicc_exec::mapping::Tile;
use maicc_noc::{NocFaultPlan, RetryPolicy};
use maicc_sram::ecc::EccMode;
use maicc_sram::fault::FaultPlan;
use serde::{Deserialize, Serialize};

/// One point of a fault-rate sweep. All rates default to zero: the
/// default point reproduces the clean run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// Seed for every RNG-driven fault source at this point.
    pub seed: u64,
    /// Per-read/MAC transient bit-flip probability in the CMems.
    pub transient_flip_rate: f64,
    /// Stuck-at cells scattered over each CC's CMem.
    pub stuck_cells: usize,
    /// A dead CMem slice (1–7), if any.
    pub dead_slice: Option<usize>,
    /// Per-hop transient flit-drop probability in the mesh.
    pub noc_drop_rate: f64,
    /// Compute tiles marked failed before placement (remapped around).
    pub failed_tiles: usize,
}

impl CampaignPoint {
    /// The zero-fault point: running it must be bit- and cycle-identical
    /// to the clean baseline.
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        CampaignPoint {
            seed,
            transient_flip_rate: 0.0,
            stuck_cells: 0,
            dead_slice: None,
            noc_drop_rate: 0.0,
            failed_tiles: 0,
        }
    }
}

/// The recovery stack applied to every swept run: ECC on the CMems, an
/// ACK/NACK retransmission policy on the mesh, and checkpoint/replay in
/// the streaming simulator. `None` on a [`FaultCampaign`] reproduces the
/// detection-only campaigns bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// ECC mode applied to every CC's CMem.
    pub ecc: EccMode,
    /// Mesh-level retransmission policy, if any.
    pub noc_retry: Option<RetryPolicy>,
    /// Replay attempts before a run is declared unrecoverable.
    pub max_replays: u32,
    /// Whether a hard fault may retire its tile and re-place the workload.
    pub remap: bool,
    /// Checkpoint cadence in sink values.
    pub checkpoint_values: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            ecc: EccMode::Correct,
            noc_retry: Some(RetryPolicy::default()),
            max_replays: 16,
            remap: true,
            checkpoint_values: 16,
        }
    }
}

/// Classification of one campaign run against the golden model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Run completed, output bit-identical to golden.
    Masked,
    /// Run completed, output differs — silent data corruption.
    Sdc,
    /// A typed error reported the fault (component or watchdog).
    Detected,
    /// Lost traffic forced early, typed quiescence.
    Degraded,
    /// Faults occurred but were corrected in place (ECC single-bit
    /// corrections, CRC-rejected flits retransmitted); golden output.
    Corrected,
    /// Detected faults forced at least one checkpoint rollback or tile
    /// remap, after which the run converged to the golden output.
    Replayed,
    /// Recovery was armed but the run still failed — replays exhausted or
    /// an unrecoverable hard fault.
    Unrecoverable,
}

impl Outcome {
    /// Stable lower-case label (used in the JSON report).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Detected => "detected",
            Outcome::Degraded => "degraded",
            Outcome::Corrected => "corrected",
            Outcome::Replayed => "replayed",
            Outcome::Unrecoverable => "unrecoverable",
        }
    }
}

/// One run's record in the campaign report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The sweep point that produced this run.
    pub point: CampaignPoint,
    /// Golden-comparison classification.
    pub outcome: Outcome,
    /// Fault events actually injected (CMem flips + stuck bits forced +
    /// dead-slice hits + NoC drops + lost packets).
    pub faults_injected: u64,
    /// Total cycles, for runs that completed.
    pub cycles: Option<u64>,
    /// Degraded-latency factor vs the clean baseline, for completed runs.
    pub latency_penalty: Option<f64>,
    /// The typed error's message, for detected/degraded runs.
    pub detail: String,
    /// Checkpoint rollbacks plus tile remaps the run needed (recovery on).
    pub replays: u32,
    /// Faults corrected in place: ECC single-bit corrections plus
    /// CRC-rejected flits that were retransmitted.
    pub corrected: u64,
    /// Re-executed cycles plus the analytic ECC cycle surcharge.
    pub recovery_overhead_cycles: u64,
    /// CMem energy spent on discarded (replayed) work, in pJ.
    pub recovery_overhead_pj: f64,
}

/// Aggregate result of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Cycles of the clean (fault-free) baseline run.
    pub clean_cycles: u64,
    /// One record per sweep point, in input order.
    pub runs: Vec<RunRecord>,
}

impl CampaignReport {
    /// Runs with the given outcome.
    #[must_use]
    pub fn count(&self, outcome: Outcome) -> usize {
        self.runs.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Renders the report as a JSON document (hand-written so it works
    /// without a serde backend).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"clean_cycles\":{},\"masked\":{},\"sdc\":{},\"detected\":{},\"degraded\":{},\
             \"corrected\":{},\"replayed\":{},\"unrecoverable\":{},\"runs\":[",
            self.clean_cycles,
            self.count(Outcome::Masked),
            self.count(Outcome::Sdc),
            self.count(Outcome::Detected),
            self.count(Outcome::Degraded),
            self.count(Outcome::Corrected),
            self.count(Outcome::Replayed),
            self.count(Outcome::Unrecoverable),
        ));
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let p = &r.point;
            s.push_str(&format!(
                "{{\"seed\":{},\"transient_flip_rate\":{},\"stuck_cells\":{},\
                 \"dead_slice\":{},\"noc_drop_rate\":{},\"failed_tiles\":{},\
                 \"outcome\":\"{}\",\"faults_injected\":{},\"cycles\":{},\
                 \"latency_penalty\":{},\"detail\":{:?},\"replays\":{},\
                 \"corrected\":{},\"recovery_overhead_cycles\":{},\
                 \"recovery_overhead_pj\":{:.2}}}",
                p.seed,
                p.transient_flip_rate,
                p.stuck_cells,
                p.dead_slice.map_or("null".to_string(), |d| d.to_string()),
                p.noc_drop_rate,
                p.failed_tiles,
                r.outcome.label(),
                r.faults_injected,
                r.cycles.map_or("null".to_string(), |c| c.to_string()),
                r.latency_penalty
                    .map_or("null".to_string(), |l| format!("{l:.4}")),
                r.detail,
                r.replays,
                r.corrected,
                r.recovery_overhead_cycles,
                r.recovery_overhead_pj,
            ));
        }
        s.push_str("]}");
        s
    }
}

/// A fault-injection campaign: one workload, a list of sweep points, a
/// cycle budget per run.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// The workload every point runs.
    pub workload: StreamConfig,
    /// The sweep points.
    pub points: Vec<CampaignPoint>,
    /// Cycle budget per run.
    pub budget: u64,
    /// Worker threads for the point sweep: `0` = one per available core,
    /// `1` = sequential, `n` = exactly `n`. Points are fully independent
    /// simulations and the report keeps input order, so the result is
    /// identical for every setting.
    pub threads: usize,
    /// Simulation engine for every run in the sweep (clean baseline and
    /// all points). Both engines are observationally identical, so the
    /// report is byte-for-byte the same; [`Engine::EventDriven`] just
    /// finishes sooner.
    pub engine: Engine,
    /// The recovery stack applied to every swept run; `None` (the
    /// constructors' default) reproduces detection-only campaigns exactly.
    pub recovery: Option<RecoveryConfig>,
}

impl FaultCampaign {
    /// A default sweep over the ResNet-18 segment: clean, rising transient
    /// rates, stuck cells, a dead slice, NoC drops, and failed tiles.
    #[must_use]
    pub fn resnet18_default(seed: u64) -> Self {
        let mut points = vec![CampaignPoint::clean(seed)];
        points.push(CampaignPoint {
            transient_flip_rate: 1e-5,
            ..CampaignPoint::clean(seed.wrapping_add(1))
        });
        points.push(CampaignPoint {
            transient_flip_rate: 1e-3,
            ..CampaignPoint::clean(seed.wrapping_add(2))
        });
        points.push(CampaignPoint {
            stuck_cells: 6,
            ..CampaignPoint::clean(seed.wrapping_add(3))
        });
        points.push(CampaignPoint {
            dead_slice: Some(3),
            ..CampaignPoint::clean(seed.wrapping_add(4))
        });
        points.push(CampaignPoint {
            noc_drop_rate: 0.02,
            ..CampaignPoint::clean(seed.wrapping_add(5))
        });
        points.push(CampaignPoint {
            failed_tiles: 2,
            ..CampaignPoint::clean(seed.wrapping_add(6))
        });
        FaultCampaign {
            workload: StreamConfig::resnet18_segment(),
            points,
            budget: 40_000_000,
            threads: 0,
            engine: Engine::default(),
            recovery: None,
        }
    }

    /// A small smoke sweep over [`StreamConfig::small_test`] at the same
    /// reference fault rates as [`Self::resnet18_default`] — cheap enough
    /// for CI gating.
    #[must_use]
    pub fn small_default(seed: u64) -> Self {
        let mut points = vec![CampaignPoint::clean(seed)];
        points.push(CampaignPoint {
            transient_flip_rate: 1e-3,
            ..CampaignPoint::clean(seed.wrapping_add(1))
        });
        points.push(CampaignPoint {
            stuck_cells: 3,
            ..CampaignPoint::clean(seed.wrapping_add(2))
        });
        points.push(CampaignPoint {
            dead_slice: Some(2),
            ..CampaignPoint::clean(seed.wrapping_add(3))
        });
        points.push(CampaignPoint {
            noc_drop_rate: 0.02,
            ..CampaignPoint::clean(seed.wrapping_add(4))
        });
        FaultCampaign {
            workload: StreamConfig::small_test(),
            points,
            budget: 5_000_000,
            threads: 0,
            engine: Engine::default(),
            recovery: None,
        }
    }

    /// Runs every point and classifies each run against the golden model.
    ///
    /// Points are swept in parallel according to [`Self::threads`]; each
    /// point is an independent simulation with its own seeded RNG streams,
    /// and records are merged back in input order, so the report is
    /// bit-identical to a sequential sweep.
    ///
    /// # Errors
    ///
    /// Propagates errors of the *clean* baseline (which must succeed) and
    /// genuine non-fault errors of the swept runs; typed fault outcomes
    /// ([`SimError::Fault`], [`SimError::Degraded`], timeouts) are
    /// recorded, not propagated.
    pub fn run(&self) -> Result<CampaignReport, SimError> {
        let golden = self.workload.golden();
        let mut clean_sim = StreamSim::new(&self.workload)?;
        clean_sim.set_engine(self.engine);
        let clean = clean_sim.run(self.budget)?;
        let workers = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            t => t,
        }
        .min(self.points.len().max(1));
        let records: Vec<Result<RunRecord, SimError>> = if workers > 1 {
            let golden = &golden;
            let mut slots: Vec<Option<Result<RunRecord, SimError>>> =
                (0..self.points.len()).map(|_| None).collect();
            let chunk = self.points.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (points, outs) in self.points.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (point, out) in points.iter().zip(outs) {
                            *out = Some(self.run_point(point, golden, clean.cycles));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|r| r.expect("sweep worker filled its slot"))
                .collect()
        } else {
            self.points
                .iter()
                .map(|p| self.run_point(p, &golden, clean.cycles))
                .collect()
        };
        let mut runs = Vec::with_capacity(records.len());
        for r in records {
            runs.push(r?);
        }
        Ok(CampaignReport {
            clean_cycles: clean.cycles,
            runs,
        })
    }

    /// Builds, faults, runs, and classifies one sweep point.
    fn run_point(
        &self,
        point: &CampaignPoint,
        golden: &[i8],
        clean_cycles: u64,
    ) -> Result<RunRecord, SimError> {
        // deterministic scatter of dead tiles over the first rows
        let failed: Vec<Tile> = (0..point.failed_tiles)
            .map(|i| Tile {
                x: (2 + 3 * (i % 4)) as u8,
                y: (i / 4) as u8,
            })
            .collect();
        let mut sim = StreamSim::new_avoiding(&self.workload, &failed)?;
        sim.set_engine(self.engine);
        let mut plan = FaultPlan::with_seed(point.seed).transient(point.transient_flip_rate);
        if point.stuck_cells > 0 {
            plan = plan.scatter_stuck(point.stuck_cells);
        }
        sim.attach_cmem_fault_plan(&plan);
        if let Some(s) = point.dead_slice {
            // pinned to one physical tile (CC 0) rather than broadcast, so
            // a remap-capable recovery stack can retire the tile and
            // re-place the workload around it
            sim.attach_cmem_fault_plan_to(0, &plan.clone().dead_slice(s));
        }
        if point.noc_drop_rate > 0.0 {
            sim.attach_noc_fault_plan(
                NocFaultPlan::with_seed(point.seed ^ 0xD1F7_31AB)
                    .drop_rate(point.noc_drop_rate)
                    .retry_after(256)
                    .max_retries(4),
            );
        }
        if let Some(rc) = &self.recovery {
            sim.set_ecc_mode(rc.ecc);
            sim.set_noc_retry_policy(rc.noc_retry);
            sim.set_recovery_policy(Some(RecoveryPolicy {
                max_replays: rc.max_replays,
                remap: rc.remap,
                checkpoint_values: rc.checkpoint_values,
            }));
        }
        let res = sim.run(self.budget);
        let rec = sim.recovery_stats();
        let ecc = sim.ecc_stats();
        let corrected = ecc.corrected + sim.noc_fault_stats().crc_rejects;
        let (outcome, cycles, detail) = match res {
            Ok(r) => {
                let outcome = if r.ofmap != golden {
                    Outcome::Sdc
                } else if rec.replays > 0 {
                    Outcome::Replayed
                } else if corrected > 0 {
                    Outcome::Corrected
                } else {
                    Outcome::Masked
                };
                (outcome, Some(r.cycles), String::new())
            }
            Err(
                e @ (SimError::Fault { .. } | SimError::Timeout { .. } | SimError::Degraded { .. }),
            ) => {
                let outcome = if self.recovery.is_some() {
                    Outcome::Unrecoverable
                } else if matches!(e, SimError::Degraded { .. }) {
                    Outcome::Degraded
                } else {
                    Outcome::Detected
                };
                (outcome, None, e.to_string())
            }
            Err(e) => return Err(e),
        };
        let noc = sim.noc_fault_stats();
        let faults_injected =
            sim.cmem_fault_stats().total() + noc.flits_dropped + noc.packets_lost;
        Ok(RunRecord {
            point: point.clone(),
            outcome,
            faults_injected,
            cycles,
            latency_penalty: cycles.map(|c| c as f64 / clean_cycles as f64),
            detail,
            replays: rec.replays,
            corrected,
            recovery_overhead_cycles: rec.replayed_cycles + ecc.cycle_surcharge,
            recovery_overhead_pj: rec.replayed_pj,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_point_is_bit_and_cycle_identical() {
        // the FaultPlan::none() regression: quiet plans attached at every
        // level must leave the run bit- and cycle-identical
        let cfg = StreamConfig::small_test();
        let clean = StreamSim::new(&cfg).unwrap().run(5_000_000).unwrap();
        let mut quiet = StreamSim::new_avoiding(&cfg, &[]).unwrap();
        quiet.attach_cmem_fault_plan(&FaultPlan::none());
        quiet.attach_noc_fault_plan(NocFaultPlan::none());
        let r = quiet.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, clean.ofmap, "bit-identity");
        assert_eq!(r.cycles, clean.cycles, "cycle-identity");
        assert_eq!(r.noc, clean.noc, "NoC statistics identity");
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn dead_slice_point_is_detected() {
        let cfg = StreamConfig::small_test();
        let campaign = FaultCampaign {
            workload: cfg,
            points: vec![CampaignPoint {
                dead_slice: Some(2),
                ..CampaignPoint::clean(11)
            }],
            budget: 5_000_000,
            threads: 1,
            engine: Engine::default(),
            recovery: None,
        };
        let report = campaign.run().unwrap();
        assert_eq!(report.runs[0].outcome, Outcome::Detected);
        assert!(report.runs[0].detail.contains("slice 2"), "{}", report.runs[0].detail);
        assert!(report.runs[0].faults_injected > 0);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        // point-level parallelism must not change a single byte of the
        // report — every point carries its own seeded RNG streams
        let base = FaultCampaign {
            workload: StreamConfig::small_test(),
            points: vec![
                CampaignPoint::clean(7),
                CampaignPoint {
                    transient_flip_rate: 1e-3,
                    ..CampaignPoint::clean(8)
                },
                CampaignPoint {
                    stuck_cells: 3,
                    ..CampaignPoint::clean(9)
                },
            ],
            budget: 5_000_000,
            threads: 1,
            engine: Engine::default(),
            recovery: None,
        };
        let sequential = base.run().unwrap();
        let mut parallel = base.clone();
        parallel.threads = 3;
        assert_eq!(parallel.run().unwrap(), sequential);
        // the cycle-accurate oracle produces the very same report
        let mut oracle = base.clone();
        oracle.engine = Engine::CycleAccurate;
        assert_eq!(oracle.run().unwrap(), sequential);
    }

    #[test]
    fn recovery_reclassifies_bad_outcomes() {
        // the ISSUE 4 acceptance gate: at the reference fault rates, at
        // least 90% of the previously-SDC/detected/degraded points must be
        // reclaimed (corrected, replayed, or fully masked) once the
        // recovery stack is armed, and none may end unrecoverable
        let mut campaign = FaultCampaign::small_default(33);
        let before = campaign.run().unwrap();
        campaign.recovery = Some(RecoveryConfig::default());
        let after = campaign.run().unwrap();
        let bad: Vec<usize> = before
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(
                    r.outcome,
                    Outcome::Sdc | Outcome::Detected | Outcome::Degraded
                )
            })
            .map(|(i, _)| i)
            .collect();
        assert!(!bad.is_empty(), "sweep must produce bad outcomes to reclaim");
        let reclaimed = bad
            .iter()
            .filter(|&&i| {
                matches!(
                    after.runs[i].outcome,
                    Outcome::Corrected | Outcome::Replayed | Outcome::Masked
                )
            })
            .count();
        assert!(
            reclaimed * 10 >= bad.len() * 9,
            "reclaimed {reclaimed}/{} bad points: {:?}",
            bad.len(),
            after.runs.iter().map(|r| r.outcome).collect::<Vec<_>>()
        );
        assert_eq!(after.count(Outcome::Unrecoverable), 0);
        // recovery work is visible in the report
        let recovered = after
            .runs
            .iter()
            .find(|r| r.outcome == Outcome::Replayed)
            .expect("at least one replayed point");
        assert!(recovered.recovery_overhead_cycles > 0);
        let json = after.to_json();
        assert!(json.contains("\"recovery_overhead_cycles\""), "{json}");
        assert!(json.contains("\"replayed\""), "{json}");
    }

    #[test]
    fn campaign_over_resnet18_segment_completes() {
        let campaign = FaultCampaign::resnet18_default(42);
        let report = campaign.run().expect("campaign must not panic or fail");
        assert_eq!(report.runs.len(), campaign.points.len());
        // the clean point is masked at exactly the baseline latency
        let clean = &report.runs[0];
        assert_eq!(clean.outcome, Outcome::Masked);
        assert_eq!(clean.cycles, Some(report.clean_cycles));
        assert_eq!(clean.faults_injected, 0);
        assert!((clean.latency_penalty.unwrap() - 1.0).abs() < 1e-12);
        // the dead-slice point is detected with a typed message
        let dead = &report.runs[4];
        assert_eq!(dead.outcome, Outcome::Detected);
        // remapping around failed tiles still completes correctly
        let remapped = &report.runs[6];
        assert_eq!(remapped.outcome, Outcome::Masked);
        // every outcome is accounted for
        let total = report.count(Outcome::Masked)
            + report.count(Outcome::Sdc)
            + report.count(Outcome::Detected)
            + report.count(Outcome::Degraded);
        assert_eq!(total, report.runs.len());
        let json = report.to_json();
        assert!(json.contains("\"clean_cycles\""), "{json}");
        assert!(json.contains("\"outcome\":\"masked\""), "{json}");
    }
}
