//! Fault-injection campaigns over the streaming simulator.
//!
//! A [`FaultCampaign`] sweeps fault rates over one workload — by default a
//! downscaled ResNet-18 segment ([`StreamConfig::resnet18_segment`]) —
//! running the full bit-level streaming simulation once per
//! [`CampaignPoint`] and comparing every completed run against the golden
//! `maicc-nn` reference. Each run is classified:
//!
//! * **masked** — the run completed and the output is bit-identical to the
//!   golden model (the injected faults were architecturally absorbed);
//! * **SDC** — silent data corruption: the run completed but the output
//!   differs;
//! * **detected** — a component reported the fault as a typed error (a
//!   dead CMem slice answering a read, or the cycle-budget watchdog);
//! * **degraded** — injected NoC faults lost traffic, so the workload
//!   quiesced early with a typed [`SimError::Degraded`] instead of
//!   hanging.
//!
//! The report is serde-serialisable and additionally renders itself as
//! JSON via [`CampaignReport::to_json`]. A zero-fault point is guaranteed
//! bit- and cycle-identical to the clean baseline.

use crate::stream::{Engine, StreamConfig, StreamSim};
use crate::SimError;
use maicc_exec::mapping::Tile;
use maicc_noc::NocFaultPlan;
use maicc_sram::fault::FaultPlan;
use serde::{Deserialize, Serialize};

/// One point of a fault-rate sweep. All rates default to zero: the
/// default point reproduces the clean run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// Seed for every RNG-driven fault source at this point.
    pub seed: u64,
    /// Per-read/MAC transient bit-flip probability in the CMems.
    pub transient_flip_rate: f64,
    /// Stuck-at cells scattered over each CC's CMem.
    pub stuck_cells: usize,
    /// A dead CMem slice (1–7), if any.
    pub dead_slice: Option<usize>,
    /// Per-hop transient flit-drop probability in the mesh.
    pub noc_drop_rate: f64,
    /// Compute tiles marked failed before placement (remapped around).
    pub failed_tiles: usize,
}

impl CampaignPoint {
    /// The zero-fault point: running it must be bit- and cycle-identical
    /// to the clean baseline.
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        CampaignPoint {
            seed,
            transient_flip_rate: 0.0,
            stuck_cells: 0,
            dead_slice: None,
            noc_drop_rate: 0.0,
            failed_tiles: 0,
        }
    }
}

/// Classification of one campaign run against the golden model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Run completed, output bit-identical to golden.
    Masked,
    /// Run completed, output differs — silent data corruption.
    Sdc,
    /// A typed error reported the fault (component or watchdog).
    Detected,
    /// Lost traffic forced early, typed quiescence.
    Degraded,
}

impl Outcome {
    /// Stable lower-case label (used in the JSON report).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Detected => "detected",
            Outcome::Degraded => "degraded",
        }
    }
}

/// One run's record in the campaign report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The sweep point that produced this run.
    pub point: CampaignPoint,
    /// Golden-comparison classification.
    pub outcome: Outcome,
    /// Fault events actually injected (CMem flips + stuck bits forced +
    /// dead-slice hits + NoC drops + lost packets).
    pub faults_injected: u64,
    /// Total cycles, for runs that completed.
    pub cycles: Option<u64>,
    /// Degraded-latency factor vs the clean baseline, for completed runs.
    pub latency_penalty: Option<f64>,
    /// The typed error's message, for detected/degraded runs.
    pub detail: String,
}

/// Aggregate result of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Cycles of the clean (fault-free) baseline run.
    pub clean_cycles: u64,
    /// One record per sweep point, in input order.
    pub runs: Vec<RunRecord>,
}

impl CampaignReport {
    /// Runs with the given outcome.
    #[must_use]
    pub fn count(&self, outcome: Outcome) -> usize {
        self.runs.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Renders the report as a JSON document (hand-written so it works
    /// without a serde backend).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"clean_cycles\":{},\"masked\":{},\"sdc\":{},\"detected\":{},\"degraded\":{},\"runs\":[",
            self.clean_cycles,
            self.count(Outcome::Masked),
            self.count(Outcome::Sdc),
            self.count(Outcome::Detected),
            self.count(Outcome::Degraded),
        ));
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let p = &r.point;
            s.push_str(&format!(
                "{{\"seed\":{},\"transient_flip_rate\":{},\"stuck_cells\":{},\
                 \"dead_slice\":{},\"noc_drop_rate\":{},\"failed_tiles\":{},\
                 \"outcome\":\"{}\",\"faults_injected\":{},\"cycles\":{},\
                 \"latency_penalty\":{},\"detail\":{:?}}}",
                p.seed,
                p.transient_flip_rate,
                p.stuck_cells,
                p.dead_slice.map_or("null".to_string(), |d| d.to_string()),
                p.noc_drop_rate,
                p.failed_tiles,
                r.outcome.label(),
                r.faults_injected,
                r.cycles.map_or("null".to_string(), |c| c.to_string()),
                r.latency_penalty
                    .map_or("null".to_string(), |l| format!("{l:.4}")),
                r.detail,
            ));
        }
        s.push_str("]}");
        s
    }
}

/// A fault-injection campaign: one workload, a list of sweep points, a
/// cycle budget per run.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// The workload every point runs.
    pub workload: StreamConfig,
    /// The sweep points.
    pub points: Vec<CampaignPoint>,
    /// Cycle budget per run.
    pub budget: u64,
    /// Worker threads for the point sweep: `0` = one per available core,
    /// `1` = sequential, `n` = exactly `n`. Points are fully independent
    /// simulations and the report keeps input order, so the result is
    /// identical for every setting.
    pub threads: usize,
    /// Simulation engine for every run in the sweep (clean baseline and
    /// all points). Both engines are observationally identical, so the
    /// report is byte-for-byte the same; [`Engine::EventDriven`] just
    /// finishes sooner.
    pub engine: Engine,
}

impl FaultCampaign {
    /// A default sweep over the ResNet-18 segment: clean, rising transient
    /// rates, stuck cells, a dead slice, NoC drops, and failed tiles.
    #[must_use]
    pub fn resnet18_default(seed: u64) -> Self {
        let mut points = vec![CampaignPoint::clean(seed)];
        points.push(CampaignPoint {
            transient_flip_rate: 1e-5,
            ..CampaignPoint::clean(seed.wrapping_add(1))
        });
        points.push(CampaignPoint {
            transient_flip_rate: 1e-3,
            ..CampaignPoint::clean(seed.wrapping_add(2))
        });
        points.push(CampaignPoint {
            stuck_cells: 6,
            ..CampaignPoint::clean(seed.wrapping_add(3))
        });
        points.push(CampaignPoint {
            dead_slice: Some(3),
            ..CampaignPoint::clean(seed.wrapping_add(4))
        });
        points.push(CampaignPoint {
            noc_drop_rate: 0.02,
            ..CampaignPoint::clean(seed.wrapping_add(5))
        });
        points.push(CampaignPoint {
            failed_tiles: 2,
            ..CampaignPoint::clean(seed.wrapping_add(6))
        });
        FaultCampaign {
            workload: StreamConfig::resnet18_segment(),
            points,
            budget: 40_000_000,
            threads: 0,
            engine: Engine::default(),
        }
    }

    /// Runs every point and classifies each run against the golden model.
    ///
    /// Points are swept in parallel according to [`Self::threads`]; each
    /// point is an independent simulation with its own seeded RNG streams,
    /// and records are merged back in input order, so the report is
    /// bit-identical to a sequential sweep.
    ///
    /// # Errors
    ///
    /// Propagates errors of the *clean* baseline (which must succeed) and
    /// genuine non-fault errors of the swept runs; typed fault outcomes
    /// ([`SimError::Fault`], [`SimError::Degraded`], timeouts) are
    /// recorded, not propagated.
    pub fn run(&self) -> Result<CampaignReport, SimError> {
        let golden = self.workload.golden();
        let mut clean_sim = StreamSim::new(&self.workload)?;
        clean_sim.set_engine(self.engine);
        let clean = clean_sim.run(self.budget)?;
        let workers = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            t => t,
        }
        .min(self.points.len().max(1));
        let records: Vec<Result<RunRecord, SimError>> = if workers > 1 {
            let golden = &golden;
            let mut slots: Vec<Option<Result<RunRecord, SimError>>> =
                (0..self.points.len()).map(|_| None).collect();
            let chunk = self.points.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (points, outs) in self.points.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (point, out) in points.iter().zip(outs) {
                            *out = Some(self.run_point(point, golden, clean.cycles));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|r| r.expect("sweep worker filled its slot"))
                .collect()
        } else {
            self.points
                .iter()
                .map(|p| self.run_point(p, &golden, clean.cycles))
                .collect()
        };
        let mut runs = Vec::with_capacity(records.len());
        for r in records {
            runs.push(r?);
        }
        Ok(CampaignReport {
            clean_cycles: clean.cycles,
            runs,
        })
    }

    /// Builds, faults, runs, and classifies one sweep point.
    fn run_point(
        &self,
        point: &CampaignPoint,
        golden: &[i8],
        clean_cycles: u64,
    ) -> Result<RunRecord, SimError> {
        // deterministic scatter of dead tiles over the first rows
        let failed: Vec<Tile> = (0..point.failed_tiles)
            .map(|i| Tile {
                x: (2 + 3 * (i % 4)) as u8,
                y: (i / 4) as u8,
            })
            .collect();
        let mut sim = StreamSim::new_avoiding(&self.workload, &failed)?;
        sim.set_engine(self.engine);
        let mut plan = FaultPlan::with_seed(point.seed).transient(point.transient_flip_rate);
        if point.stuck_cells > 0 {
            plan = plan.scatter_stuck(point.stuck_cells);
        }
        if let Some(s) = point.dead_slice {
            plan = plan.dead_slice(s);
        }
        sim.attach_cmem_fault_plan(&plan);
        if point.noc_drop_rate > 0.0 {
            sim.attach_noc_fault_plan(
                NocFaultPlan::with_seed(point.seed ^ 0xD1F7_31AB)
                    .drop_rate(point.noc_drop_rate)
                    .retry_after(256)
                    .max_retries(4),
            );
        }
        let (outcome, cycles, detail) = match sim.run(self.budget) {
            Ok(r) => {
                let outcome = if r.ofmap == golden {
                    Outcome::Masked
                } else {
                    Outcome::Sdc
                };
                (outcome, Some(r.cycles), String::new())
            }
            Err(e @ SimError::Fault { .. }) => (Outcome::Detected, None, e.to_string()),
            Err(e @ SimError::Timeout { .. }) => (Outcome::Detected, None, e.to_string()),
            Err(e @ SimError::Degraded { .. }) => (Outcome::Degraded, None, e.to_string()),
            Err(e) => return Err(e),
        };
        let noc = sim.noc_fault_stats();
        let faults_injected =
            sim.cmem_fault_stats().total() + noc.flits_dropped + noc.packets_lost;
        Ok(RunRecord {
            point: point.clone(),
            outcome,
            faults_injected,
            cycles,
            latency_penalty: cycles.map(|c| c as f64 / clean_cycles as f64),
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fault_point_is_bit_and_cycle_identical() {
        // the FaultPlan::none() regression: quiet plans attached at every
        // level must leave the run bit- and cycle-identical
        let cfg = StreamConfig::small_test();
        let clean = StreamSim::new(&cfg).unwrap().run(5_000_000).unwrap();
        let mut quiet = StreamSim::new_avoiding(&cfg, &[]).unwrap();
        quiet.attach_cmem_fault_plan(&FaultPlan::none());
        quiet.attach_noc_fault_plan(NocFaultPlan::none());
        let r = quiet.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, clean.ofmap, "bit-identity");
        assert_eq!(r.cycles, clean.cycles, "cycle-identity");
        assert_eq!(r.noc, clean.noc, "NoC statistics identity");
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn dead_slice_point_is_detected() {
        let cfg = StreamConfig::small_test();
        let campaign = FaultCampaign {
            workload: cfg,
            points: vec![CampaignPoint {
                dead_slice: Some(2),
                ..CampaignPoint::clean(11)
            }],
            budget: 5_000_000,
            threads: 1,
            engine: Engine::default(),
        };
        let report = campaign.run().unwrap();
        assert_eq!(report.runs[0].outcome, Outcome::Detected);
        assert!(report.runs[0].detail.contains("slice 2"), "{}", report.runs[0].detail);
        assert!(report.runs[0].faults_injected > 0);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        // point-level parallelism must not change a single byte of the
        // report — every point carries its own seeded RNG streams
        let base = FaultCampaign {
            workload: StreamConfig::small_test(),
            points: vec![
                CampaignPoint::clean(7),
                CampaignPoint {
                    transient_flip_rate: 1e-3,
                    ..CampaignPoint::clean(8)
                },
                CampaignPoint {
                    stuck_cells: 3,
                    ..CampaignPoint::clean(9)
                },
            ],
            budget: 5_000_000,
            threads: 1,
            engine: Engine::default(),
        };
        let sequential = base.run().unwrap();
        let mut parallel = base.clone();
        parallel.threads = 3;
        assert_eq!(parallel.run().unwrap(), sequential);
        // the cycle-accurate oracle produces the very same report
        let mut oracle = base.clone();
        oracle.engine = Engine::CycleAccurate;
        assert_eq!(oracle.run().unwrap(), sequential);
    }

    #[test]
    fn campaign_over_resnet18_segment_completes() {
        let campaign = FaultCampaign::resnet18_default(42);
        let report = campaign.run().expect("campaign must not panic or fail");
        assert_eq!(report.runs.len(), campaign.points.len());
        // the clean point is masked at exactly the baseline latency
        let clean = &report.runs[0];
        assert_eq!(clean.outcome, Outcome::Masked);
        assert_eq!(clean.cycles, Some(report.clean_cycles));
        assert_eq!(clean.faults_injected, 0);
        assert!((clean.latency_penalty.unwrap() - 1.0).abs() < 1e-12);
        // the dead-slice point is detected with a typed message
        let dead = &report.runs[4];
        assert_eq!(dead.outcome, Outcome::Detected);
        // remapping around failed tiles still completes correctly
        let remapped = &report.runs[6];
        assert_eq!(remapped.outcome, Outcome::Masked);
        // every outcome is accounted for
        let total = report.count(Outcome::Masked)
            + report.count(Outcome::Sdc)
            + report.count(Outcome::Detected)
            + report.count(Outcome::Degraded);
        assert_eq!(total, report.runs.len());
        let json = report.to_json();
        assert!(json.contains("\"clean_cycles\""), "{json}");
        assert!(json.contains("\"outcome\":\"masked\""), "{json}");
    }
}
