//! Instruction-level co-simulation of multiple nodes.
//!
//! The streaming simulator ([`crate::stream`]) models node behaviour; this
//! module runs *actual programs* on several [`maicc_core::node::Node`]s
//! concurrently, interleaving them instruction by instruction over a
//! [`crate::fabric::SharedFabric`]. That is the paper's MIMD execution
//! mode at full fidelity: every core has its own control flow, and
//! synchronization happens exactly as §4.2 describes — remote stores of
//! data rows plus software-lock flags (`p` / `nextp` in Algorithm 1).
//!
//! The flagship test runs a two-node CONV node group: a data-collection
//! program transposes and pushes ifmap vectors with `StoreRow.RC`, a
//! computing program spins on the flag, MACs the vector against resident
//! filters and accumulates the ofmap — and the result must equal the
//! golden convolution.

use crate::fabric::SharedFabric;
use crate::SimError;
use maicc_core::mem_map::{remote_addr, RowPtr};
use maicc_core::node::Node;
use maicc_isa::asm::Assembler;
use maicc_isa::inst::{BranchKind, Instruction as I, OpImmKind, OpKind, VecWidth};
use maicc_isa::reg::Reg;

/// A set of nodes stepping in lockstep rounds.
pub struct CoSim {
    nodes: Vec<Node>,
    steps: u64,
}

impl std::fmt::Debug for CoSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoSim")
            .field("nodes", &self.nodes.len())
            .field("steps", &self.steps)
            .finish()
    }
}

impl CoSim {
    /// Creates a co-simulation over the given nodes.
    #[must_use]
    pub fn new(nodes: Vec<Node>) -> Self {
        CoSim { nodes, steps: 0 }
    }

    /// Access to a node (for post-run inspection).
    #[must_use]
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Total instructions stepped across all nodes.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs round-robin (one instruction per live node per round) until
    /// every node halts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] after `max_rounds`, or propagates the
    /// first node error.
    pub fn run(&mut self, max_rounds: u64) -> Result<(), SimError> {
        for _ in 0..max_rounds {
            let mut live = false;
            for n in &mut self.nodes {
                if !n.halted() {
                    live = true;
                    n.step().map_err(SimError::from)?;
                    self.steps += 1;
                }
            }
            if !live {
                return Ok(());
            }
        }
        Err(SimError::Timeout { budget: max_rounds })
    }
}

/// Builds the two-node CONV node group of Algorithm 1 at ISA level and
/// returns `(cosim, read_ofmap)` where the closure extracts the computing
/// node's `[M, OH, OW]` i32 ofmap after the run.
///
/// Geometry: `filters ≤ 5` filters of `k×k×c` (c ≤ 256) over an
/// `h×w×c` ifmap, 8-bit, valid convolution, one computing core.
///
/// The producer (node 0) holds the transposed ifmap vectors pre-staged in
/// its own CMem (slices 1–7 unused; rows staged through the fabric). For
/// each pixel it waits for the consumer's ready flag, `StoreRow.RC`s the
/// 8 rows into the consumer's slice 0, and raises the valid flag. The
/// consumer (node 1) mirrors Algorithm 1: spin on `p`, broadcast, MAC,
/// accumulate, clear `p`.
///
/// # Errors
///
/// Returns [`SimError::DoesNotFit`] for geometry the single-group layout
/// cannot hold.
#[allow(clippy::too_many_lines)]
pub fn build_conv_pair(
    filters: usize,
    k: usize,
    c: usize,
    h: usize,
    w: usize,
    ifmap: &[i8],
    weights: &[i8],
) -> Result<(CoSim, ConvPairLayout), SimError> {
    if filters > 5 || c > 256 || filters * k * k > 49 {
        return Err(SimError::DoesNotFit {
            reason: "single computing core holds at most 5 small filters".into(),
        });
    }
    let (oh, ow) = (h - k + 1, w - k + 1);
    let fabric = SharedFabric::new();
    // mesh positions: producer at (1,1), consumer at (2,1)
    let (px, py) = (1u8, 1u8);
    let (cx, cy) = (2u8, 1u8);
    // flags in the consumer's window: 0x100 = p (vector valid),
    // 0x104 = ready (consumer wants the next vector)
    let p_flag = remote_addr(cx, cy, 0x100);
    let ready_flag = remote_addr(cx, cy, 0x104);

    // stage the transposed ifmap vectors in the fabric's DRAM rows
    for y in 0..h {
        for x in 0..w {
            let pix = y * w + x;
            let vec: Vec<u16> = (0..256)
                .map(|ch| {
                    if ch < c {
                        ifmap[(ch * h + y) * w + x] as u8 as u16
                    } else {
                        0
                    }
                })
                .collect();
            for (i, plane) in maicc_sram::transpose::pack_words(&vec, 8, 256)
                .into_iter()
                .enumerate()
            {
                fabric.preload_row(
                    RowPtr::Dram {
                        offset: (pix * 256 + i * 32) as u32,
                    },
                    plane,
                );
            }
        }
    }
    // initial state: consumer ready
    {
        let mut boot = fabric.port(0, 0);
        use maicc_core::node::RemotePort;
        boot.store(ready_flag, 1, 4);
    }

    // ---- producer program -------------------------------------------------
    let mut p = Assembler::new();
    // S0 = pixel counter, S1 = total pixels, S2 = DRAM row ptr,
    // S3 = consumer row ptr base (slice 0 row 0), S4/S5 = flag addrs
    p.inst(I::li(Reg::S0, 0));
    p.inst(I::li(Reg::S1, (h * w) as i32));
    p.li32(Reg::S2, RowPtr::Dram { offset: 0 }.pack() as i32);
    p.li32(
        Reg::S3,
        RowPtr::Remote {
            x: cx,
            y: cy,
            slice: 0,
            row: 0,
        }
        .pack() as i32,
    );
    p.li32(Reg::S4, p_flag as i32);
    p.li32(Reg::S5, ready_flag as i32);
    p.label("pixel");
    // wait for ready, then consume it
    p.label("wait_ready");
    p.inst(I::lw(Reg::T0, Reg::S5, 0));
    p.branch(BranchKind::Beq, Reg::T0, Reg::Zero, "wait_ready");
    p.inst(I::sw(Reg::Zero, Reg::S5, 0));
    // fetch 8 rows from DRAM into local slice 0, then push to the consumer
    for r in 0..8u8 {
        p.inst(I::LoadRowRC {
            rs1: Reg::S2,
            slice: 0,
            row: r,
        });
        p.inst(I::addi(Reg::S2, Reg::S2, 32));
    }
    for r in 0..8u8 {
        // S3 + r·32 in the packed row-pointer encoding = row field + r
        p.inst(I::addi(Reg::T1, Reg::S3, (r as i32) << 5));
        p.inst(I::StoreRowRC {
            rs1: Reg::T1,
            slice: 0,
            row: r,
        });
    }
    // raise the valid flag
    p.inst(I::li(Reg::T0, 1));
    p.inst(I::sw(Reg::T0, Reg::S4, 0));
    p.inst(I::addi(Reg::S0, Reg::S0, 1));
    p.branch(BranchKind::Blt, Reg::S0, Reg::S1, "pixel");
    p.inst(I::Ebreak);
    let producer_prog = p.assemble().map_err(SimError::from)?;

    // ---- consumer program -------------------------------------------------
    // mirrors CmemConvKernel's software-pipelined body, but the ifmap
    // arrives through the fabric (LoadRow.RC from its own mailbox rows)
    let mut q = Assembler::new();
    let placement: Vec<(usize, usize, usize, u8, u8)> = (0..filters * k * k)
        .map(|v| {
            let f = v / (k * k);
            let pix = v % (k * k);
            (f, pix / k, pix % k, (1 + v % 7) as u8, (8 + 8 * (v / 7)) as u8)
        })
        .collect();
    let guard = (k * w + k + 8) as i32;
    let ofmap_base = guard * 4;
    q.inst(I::li(Reg::S0, 0)); // x
    q.inst(I::li(Reg::S1, 0)); // y
    q.inst(I::li(Reg::S4, ow as i32));
    q.inst(I::li(Reg::S5, w as i32));
    q.inst(I::li(Reg::S6, h as i32));
    q.li32(Reg::S10, p_flag as i32); // poll the mailbox flag through the fabric
    q.li32(
        Reg::S11,
        RowPtr::Remote {
            x: cx,
            y: cy,
            slice: 0,
            row: 0,
        }
        .pack() as i32,
    );
    q.label("y_loop");
    q.inst(I::li(Reg::S0, 0));
    q.label("x_loop");
    // spin on the mailbox flag the producer raises
    q.label("wait_p");
    q.inst(I::lw(Reg::T0, Reg::S10, 0));
    q.branch(BranchKind::Beq, Reg::T0, Reg::Zero, "wait_p");
    q.inst(I::sw(Reg::Zero, Reg::S10, 0));
    // pull the 8 mailbox rows into slice 0
    for r in 0..8u8 {
        q.inst(I::addi(Reg::T1, Reg::S11, (r as i32) << 5));
        q.inst(I::LoadRowRC {
            rs1: Reg::T1,
            slice: 0,
            row: r,
        });
    }
    // broadcast + MAC + masked accumulate (same shape as the node kernel)
    let used: Vec<u8> = {
        let mut s: Vec<u8> = placement.iter().map(|&(_, _, _, sl, _)| sl).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for &slice in &used {
        q.inst(I::MoveC {
            src_slice: 0,
            src_row: 0,
            dst_slice: slice,
            dst_row: 0,
            width: VecWidth::W8,
        });
    }
    // per-iteration ofmap base: A1 = base + 4*(y*OW + x); A2.. per filter
    let bregs = [Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
    q.inst(I::Op {
        kind: OpKind::Mul,
        rd: Reg::T0,
        rs1: Reg::S1,
        rs2: Reg::S4,
    });
    q.inst(I::add(Reg::T0, Reg::T0, Reg::S0));
    q.inst(I::OpImm {
        kind: OpImmKind::Slli,
        rd: Reg::T0,
        rs1: Reg::T0,
        imm: 2,
    });
    q.li32(Reg::T2, ofmap_base);
    q.inst(I::add(bregs[0], Reg::T0, Reg::T2));
    for f in 1..filters {
        q.inst(I::addi(bregs[f], bregs[f - 1], (4 * oh * ow) as i32));
    }
    for &(f, ky, kx, slice, row) in &placement {
        q.inst(I::MacC {
            rd: Reg::A0,
            slice,
            row_a: 0,
            row_b: row,
            width: VecWidth::W8,
        });
        q.inst(I::addi(Reg::T1, Reg::S1, -(ky as i32)));
        q.inst(I::OpImm {
            kind: OpImmKind::Sltiu,
            rd: Reg::T3,
            rs1: Reg::T1,
            imm: oh as i32,
        });
        q.inst(I::addi(Reg::T2, Reg::S0, -(kx as i32)));
        q.inst(I::OpImm {
            kind: OpImmKind::Sltiu,
            rd: Reg::T4,
            rs1: Reg::T2,
            imm: ow as i32,
        });
        q.inst(I::Op {
            kind: OpKind::And,
            rd: Reg::T3,
            rs1: Reg::T3,
            rs2: Reg::T4,
        });
        q.inst(I::Op {
            kind: OpKind::Mul,
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::T3,
        });
        let imm = -((ky * ow + kx) as i32) * 4;
        q.inst(I::lw(Reg::T5, bregs[f], imm));
        q.inst(I::add(Reg::T5, Reg::T5, Reg::A0));
        q.inst(I::sw(Reg::T5, bregs[f], imm));
    }
    // signal ready for the next vector
    q.inst(I::li(Reg::T0, 1));
    q.li32(Reg::T1, ready_flag as i32);
    q.inst(I::sw(Reg::T0, Reg::T1, 0));
    q.inst(I::addi(Reg::S0, Reg::S0, 1));
    q.branch(BranchKind::Bge, Reg::S0, Reg::S5, "x_done");
    q.jump("x_loop");
    q.label("x_done");
    q.inst(I::addi(Reg::S1, Reg::S1, 1));
    q.branch(BranchKind::Bge, Reg::S1, Reg::S6, "y_done");
    q.jump("y_loop");
    q.label("y_done");
    q.inst(I::Ebreak);
    let consumer_prog = q.assemble().map_err(SimError::from)?;

    let producer = Node::new(producer_prog, Box::new(fabric.port(px, py)));
    let mut consumer = Node::new(consumer_prog, Box::new(fabric.port(cx, cy)));
    // resident filters
    for &(f, ky, kx, slice, row) in &placement {
        let vec: Vec<i8> = (0..256)
            .map(|ch| {
                if ch < c {
                    weights[((f * c + ch) * k + ky) * k + kx]
                } else {
                    0
                }
            })
            .collect();
        consumer
            .cmem_mut()
            .write_vector_i8(slice as usize, row as usize, &vec)
            .map_err(SimError::from)?;
    }
    // both flags live in the consumer's fabric window (mailbox semantics,
    // crate::fabric): the producer stores and the consumer polls the same
    // global address, exactly the p/nextp software locks of Algorithm 1
    let layout = ConvPairLayout {
        filters,
        oh,
        ow,
        ofmap_base: ofmap_base as u32,
    };
    Ok((CoSim::new(vec![producer, consumer]), layout))
}

/// Where the consumer's results live after a [`build_conv_pair`] run.
#[derive(Debug, Clone, Copy)]
pub struct ConvPairLayout {
    /// Filter count.
    pub filters: usize,
    /// Ofmap height.
    pub oh: usize,
    /// Ofmap width.
    pub ow: usize,
    /// Byte offset of the i32 ofmap in the consumer's data memory.
    pub ofmap_base: u32,
}

impl ConvPairLayout {
    /// Reads the ofmap from the consumer node.
    ///
    /// # Errors
    ///
    /// Propagates local-memory range errors.
    pub fn read_ofmap(&self, consumer: &Node) -> Result<Vec<i32>, SimError> {
        (0..self.filters * self.oh * self.ow)
            .map(|i| {
                consumer
                    .read_local(self.ofmap_base + (i * 4) as u32, 4)
                    .map(|v| v as i32)
                    .map_err(SimError::from)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_core::kernels::ConvWorkload;

    #[test]
    fn two_node_conv_matches_golden() {
        let wl = ConvWorkload {
            filters: 2,
            r: 3,
            s: 3,
            c: 16,
            h: 5,
            w: 5,
        };
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let (mut sim, layout) =
            build_conv_pair(wl.filters, wl.r, wl.c, wl.h, wl.w, &ifmap, &weights).unwrap();
        sim.run(10_000_000).unwrap();
        assert_eq!(
            layout.read_ofmap(sim.node(1)).unwrap(),
            wl.golden(&ifmap, &weights)
        );
        assert!(sim.steps() > 1000);
    }

    #[test]
    fn oversized_pair_rejected() {
        let e = build_conv_pair(6, 3, 16, 5, 5, &[0; 400], &[0; 864 * 6 / 2]);
        assert!(matches!(e, Err(SimError::DoesNotFit { .. })));
    }
}
