use std::fmt;

/// Errors raised by the system simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation did not finish within the cycle budget.
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A workload does not fit the configured array.
    DoesNotFit {
        /// Human-readable description.
        reason: String,
    },
    /// An underlying component failed.
    Component {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { budget } => write!(f, "simulation exceeded {budget} cycles"),
            SimError::DoesNotFit { reason } => write!(f, "workload does not fit: {reason}"),
            SimError::Component { reason } => write!(f, "component failure: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<maicc_sram::SramError> for SimError {
    fn from(e: maicc_sram::SramError) -> Self {
        SimError::Component {
            reason: e.to_string(),
        }
    }
}

impl From<maicc_core::CoreError> for SimError {
    fn from(e: maicc_core::CoreError) -> Self {
        SimError::Component {
            reason: e.to_string(),
        }
    }
}

impl From<maicc_exec::ExecError> for SimError {
    fn from(e: maicc_exec::ExecError) -> Self {
        SimError::Component {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SimError::Timeout { budget: 5 }.to_string().contains('5'));
    }
}
