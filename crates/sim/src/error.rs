use std::fmt;

/// A typed failure from one of the simulated components, preserved as the
/// source of a [`SimError`] instead of being flattened to a string.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ComponentError {
    /// The compute SRAM / CMem model.
    Sram(maicc_sram::SramError),
    /// The RISC-V core model.
    Core(maicc_core::CoreError),
    /// The ISA / assembler layer.
    Isa(maicc_isa::IsaError),
    /// The golden NN reference.
    Nn(maicc_nn::NnError),
    /// The execution framework.
    Exec(maicc_exec::ExecError),
    /// The mesh network-on-chip.
    Noc(maicc_noc::NocError),
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentError::Sram(e) => write!(f, "sram: {e}"),
            ComponentError::Core(e) => write!(f, "core: {e}"),
            ComponentError::Isa(e) => write!(f, "isa: {e}"),
            ComponentError::Nn(e) => write!(f, "nn: {e}"),
            ComponentError::Exec(e) => write!(f, "exec: {e}"),
            ComponentError::Noc(e) => write!(f, "noc: {e}"),
        }
    }
}

impl std::error::Error for ComponentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComponentError::Sram(e) => Some(e),
            ComponentError::Core(e) => Some(e),
            ComponentError::Isa(e) => Some(e),
            ComponentError::Nn(e) => Some(e),
            ComponentError::Exec(e) => Some(e),
            ComponentError::Noc(e) => Some(e),
        }
    }
}

/// Errors raised by the system simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation did not finish within the cycle budget.
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A workload does not fit the configured array.
    DoesNotFit {
        /// Human-readable description.
        reason: String,
    },
    /// An underlying component failed; the typed error is preserved and
    /// reachable through [`std::error::Error::source`].
    Component {
        /// The component failure.
        source: ComponentError,
    },
    /// A message arrived somewhere the streaming protocol never sends it —
    /// an internal invariant violation, not a data condition.
    Protocol {
        /// What arrived where.
        reason: String,
    },
    /// An *injected* fault was detected by a component as a typed error
    /// (e.g. a dead CMem slice answered a read). Detection is the desired
    /// outcome of a fault campaign; the source names the faulting
    /// component.
    Fault {
        /// The component that detected the fault.
        source: ComponentError,
    },
    /// The run ended degraded: injected NoC faults lost traffic, so the
    /// workload could not complete at full fidelity but did not hang.
    Degraded {
        /// Packets the mesh abandoned after exhausting retries.
        lost_packets: u64,
        /// Cycle at which the simulation quiesced.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { budget } => write!(f, "simulation exceeded {budget} cycles"),
            SimError::DoesNotFit { reason } => write!(f, "workload does not fit: {reason}"),
            SimError::Component { source } => write!(f, "component failure: {source}"),
            SimError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            SimError::Fault { source } => write!(f, "injected fault detected: {source}"),
            SimError::Degraded {
                lost_packets,
                cycles,
            } => write!(
                f,
                "degraded completion: {lost_packets} packets lost, quiesced at cycle {cycles}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Component { source } | SimError::Fault { source } => Some(source),
            _ => None,
        }
    }
}

impl From<maicc_sram::SramError> for SimError {
    /// Dead-slice and uncorrectable-ECC errors only ever come from injected
    /// faults, so they map to [`SimError::Fault`]; every other SRAM error is
    /// a genuine [`SimError::Component`] failure.
    fn from(e: maicc_sram::SramError) -> Self {
        let source = ComponentError::Sram(e);
        if matches!(
            source,
            ComponentError::Sram(
                maicc_sram::SramError::SliceFailed { .. }
                    | maicc_sram::SramError::EccUncorrectable { .. }
            )
        ) {
            SimError::Fault { source }
        } else {
            SimError::Component { source }
        }
    }
}

impl From<maicc_core::CoreError> for SimError {
    fn from(e: maicc_core::CoreError) -> Self {
        SimError::Component {
            source: ComponentError::Core(e),
        }
    }
}

impl From<maicc_isa::IsaError> for SimError {
    fn from(e: maicc_isa::IsaError) -> Self {
        SimError::Component {
            source: ComponentError::Isa(e),
        }
    }
}

impl From<maicc_nn::NnError> for SimError {
    fn from(e: maicc_nn::NnError) -> Self {
        SimError::Component {
            source: ComponentError::Nn(e),
        }
    }
}

impl From<maicc_exec::ExecError> for SimError {
    fn from(e: maicc_exec::ExecError) -> Self {
        SimError::Component {
            source: ComponentError::Exec(e),
        }
    }
}

impl From<maicc_noc::NocError> for SimError {
    fn from(e: maicc_noc::NocError) -> Self {
        SimError::Component {
            source: ComponentError::Noc(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays() {
        assert!(SimError::Timeout { budget: 5 }.to_string().contains('5'));
    }

    #[test]
    fn component_preserves_typed_source() {
        let e: SimError = maicc_exec::ExecError::BadShapes {
            reason: "x".into(),
        }
        .into();
        let src = e.source().expect("chained source");
        let comp = src.downcast_ref::<ComponentError>().expect("ComponentError");
        assert!(matches!(
            comp,
            ComponentError::Exec(maicc_exec::ExecError::BadShapes { .. })
        ));
        // one level deeper: the original ExecError is still reachable
        let inner = comp.source().expect("leaf source");
        assert!(inner.downcast_ref::<maicc_exec::ExecError>().is_some());
    }

    #[test]
    fn dead_slice_becomes_fault_not_component() {
        let e: SimError = maicc_sram::SramError::SliceFailed { slice: 3 }.into();
        assert!(matches!(
            e,
            SimError::Fault {
                source: ComponentError::Sram(maicc_sram::SramError::SliceFailed { slice: 3 })
            }
        ));
        assert!(e.to_string().contains("injected fault"));
        assert!(e.source().is_some());
    }

    #[test]
    fn degraded_reports_loss_and_cycle() {
        let e = SimError::Degraded {
            lost_packets: 4,
            cycles: 1234,
        };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains("1234"), "{s}");
    }
}
