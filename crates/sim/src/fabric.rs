//! A shared remote-access fabric for instruction-level multi-core runs.
//!
//! Each [`maicc_core::node::Node`] owns its port by value, so cores cannot
//! mutate each other directly. The fabric solves this with shared state:
//! every remote window and the DRAM space live in one
//! [`SharedFabric`], and each core gets a [`FabricPort`] handle that knows
//! the core's mesh coordinate — remote accesses pay the X-Y hop distance
//! as latency. Remote stores therefore behave as **mailboxes**: the
//! consumer polls the same global address the producer wrote.
//!
//! ## Ownership-striped state
//!
//! The fabric used to be one `Arc<Mutex<FabricInner>>`, which serialized
//! every worker thread on a single lock. It is now partitioned the same
//! way the streaming engine partitions node state: storage is split into
//! [`STRIPES`] independently locked stripes keyed by the *owning tile*
//! bits of the address (the `y` field of a remote window, the row bits of
//! a DRAM address), and the access counters are lock-free atomics. Cores
//! touching different tiles' windows — the common case in a multi-DNN
//! deployment, where each model owns a disjoint tile range — never
//! contend; an AMO still takes its owning stripe's lock for the whole
//! read-modify-write, so atomicity is unchanged. Ports (and the
//! [`maicc_core::node::Node`]s that own them) stay `Send`, the same
//! parallelism the event-driven [`crate::stream`] engine uses.

use maicc_core::mem_map::RowPtr;
use maicc_core::node::{amo_result, RemotePort};
use maicc_isa::inst::AmoKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Base one-way latency of a remote access besides hop distance
/// (injection, ejection, service).
const BASE_LATENCY: u32 = 4;
/// Extra latency for DRAM-space accesses (LLC + DRAM service).
const DRAM_LATENCY: u32 = 30;
/// Number of independently locked storage stripes.
const STRIPES: usize = 16;

/// The stripe owning `addr`: remote windows hash by the owning tile's
/// coordinate bits (bits 14.. carry `y` and `x`), DRAM rows by their row
/// bits, so traffic to distinct tiles lands on distinct locks.
fn stripe_of(addr: u32) -> usize {
    ((addr >> 14) as usize) % STRIPES
}

/// One stripe's storage: word mailboxes and row buffers whose owning
/// tile hashes here.
#[derive(Debug, Default)]
struct Stripe {
    words: HashMap<u32, u32>,
    rows: HashMap<u32, Vec<u64>>,
}

#[derive(Debug)]
struct FabricState {
    stripes: [Mutex<Stripe>; STRIPES],
    accesses: AtomicU64,
    row_transfers: AtomicU64,
}

impl Default for FabricState {
    fn default() -> Self {
        FabricState {
            stripes: std::array::from_fn(|_| Mutex::new(Stripe::default())),
            accesses: AtomicU64::new(0),
            row_transfers: AtomicU64::new(0),
        }
    }
}

impl FabricState {
    fn stripe(&self, addr: u32) -> std::sync::MutexGuard<'_, Stripe> {
        self.stripes[stripe_of(addr)]
            .lock()
            .expect("fabric stripe poisoned")
    }
}

/// The shared fabric.
#[derive(Debug, Clone, Default)]
pub struct SharedFabric {
    inner: Arc<FabricState>,
}

impl SharedFabric {
    /// Creates an empty fabric.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A port handle for the core at mesh position (`x`, `y`).
    #[must_use]
    pub fn port(&self, x: u8, y: u8) -> FabricPort {
        FabricPort {
            inner: Arc::clone(&self.inner),
            x,
            y,
        }
    }

    /// Pre-loads a row (e.g. DRAM-resident transposed ifmap data).
    pub fn preload_row(&self, ptr: RowPtr, lanes: Vec<u64>) {
        self.inner.stripe(ptr.pack()).rows.insert(ptr.pack(), lanes);
    }

    /// Reads a word back for inspection.
    #[must_use]
    pub fn word(&self, addr: u32) -> Option<u32> {
        self.inner.stripe(addr).words.get(&(addr & !3)).copied()
    }

    /// Reads a row back for inspection.
    #[must_use]
    pub fn row(&self, ptr: RowPtr) -> Option<Vec<u64>> {
        self.inner.stripe(ptr.pack()).rows.get(&ptr.pack()).cloned()
    }

    /// Total word accesses served.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.inner.accesses.load(Ordering::Relaxed)
    }

    /// Total row transfers served.
    #[must_use]
    pub fn row_transfers(&self) -> u64 {
        self.inner.row_transfers.load(Ordering::Relaxed)
    }
}

/// One core's handle onto the fabric.
#[derive(Debug, Clone)]
pub struct FabricPort {
    inner: Arc<FabricState>,
    x: u8,
    y: u8,
}

impl FabricPort {
    fn latency_to(&self, addr: u32) -> u32 {
        if addr >= 0x8000_0000 {
            // DRAM window: to the nearest LLC row (top/bottom of the mesh)
            let hops = (self.y.min(15u8.saturating_sub(self.y))) as u32 + 2;
            BASE_LATENCY + hops + DRAM_LATENCY
        } else {
            let tx = ((addr >> 22) & 0xFF) as u8;
            let ty = ((addr >> 14) & 0xFF) as u8;
            let hops = self.x.abs_diff(tx) as u32 + self.y.abs_diff(ty) as u32;
            BASE_LATENCY + hops
        }
    }
}

impl RemotePort for FabricPort {
    fn load(&mut self, addr: u32, size: u8) -> (u32, u32) {
        let lat = 2 * self.latency_to(addr); // round trip
        self.inner.accesses.fetch_add(1, Ordering::Relaxed);
        let word = self
            .inner
            .stripe(addr)
            .words
            .get(&(addr & !3))
            .copied()
            .unwrap_or(0);
        let sh = (addr & 3) * 8;
        let v = match size {
            1 => (word >> sh) & 0xFF,
            2 => (word >> sh) & 0xFFFF,
            _ => word,
        };
        (v, lat)
    }

    fn store(&mut self, addr: u32, value: u32, size: u8) -> u32 {
        let lat = self.latency_to(addr); // fire and forget
        self.inner.accesses.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.inner.stripe(addr);
        let word = stripe.words.entry(addr & !3).or_insert(0);
        let sh = (addr & 3) * 8;
        match size {
            1 => *word = (*word & !(0xFF << sh)) | ((value & 0xFF) << sh),
            2 => *word = (*word & !(0xFFFF << sh)) | ((value & 0xFFFF) << sh),
            _ => *word = value,
        }
        lat
    }

    fn amo(&mut self, kind: AmoKind, addr: u32, value: u32) -> (u32, u32) {
        let lat = 2 * self.latency_to(addr);
        self.inner.accesses.fetch_add(1, Ordering::Relaxed);
        // the whole read-modify-write happens under the owning stripe's
        // lock, so AMOs on the same word stay atomic
        let mut stripe = self.inner.stripe(addr);
        let old = stripe.words.get(&(addr & !3)).copied().unwrap_or(0);
        if kind != AmoKind::LrW {
            let new = amo_result(kind, old, value);
            stripe.words.insert(addr & !3, new);
        }
        (old, lat)
    }

    fn load_row(&mut self, ptr: RowPtr) -> (Vec<u64>, u32) {
        let lat = 2 * self.latency_to(ptr.pack());
        self.inner.row_transfers.fetch_add(1, Ordering::Relaxed);
        (
            self.inner
                .stripe(ptr.pack())
                .rows
                .get(&ptr.pack())
                .cloned()
                .unwrap_or_else(|| vec![0; 4]),
            lat,
        )
    }

    fn store_row(&mut self, ptr: RowPtr, lanes: &[u64]) -> u32 {
        let lat = self.latency_to(ptr.pack());
        self.inner.row_transfers.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stripe(ptr.pack())
            .rows
            .insert(ptr.pack(), lanes.to_vec());
        lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_core::mem_map::remote_addr;
    use maicc_core::node::Node;
    use maicc_isa::asm::Assembler;
    use maicc_isa::inst::{BranchKind, Instruction as I};
    use maicc_isa::reg::Reg;

    #[test]
    fn two_ports_share_state() {
        let fab = SharedFabric::new();
        let mut a = fab.port(0, 0);
        let mut b = fab.port(5, 5);
        a.store(remote_addr(5, 5, 0x100), 99, 4);
        let (v, _) = b.load(remote_addr(5, 5, 0x100), 4);
        assert_eq!(v, 99);
        assert_eq!(fab.accesses(), 2);
    }

    #[test]
    fn latency_grows_with_distance() {
        let fab = SharedFabric::new();
        let mut near = fab.port(5, 4);
        let mut far = fab.port(0, 0);
        let addr = remote_addr(5, 5, 0);
        let l_near = near.store(addr, 1, 4);
        let l_far = far.store(addr, 1, 4);
        assert!(l_far > l_near);
    }

    #[test]
    fn dram_accesses_cost_more() {
        let fab = SharedFabric::new();
        let mut p = fab.port(5, 5);
        let l_core = p.store(remote_addr(5, 6, 0), 1, 4);
        let l_dram = p.store(0x8000_0000, 1, 4);
        assert!(l_dram > l_core);
    }

    #[test]
    fn amo_add_is_atomic_rmw() {
        let fab = SharedFabric::new();
        let mut a = fab.port(0, 0);
        let addr = remote_addr(1, 1, 0);
        a.store(addr, 10, 4);
        let (old, _) = a.amo(AmoKind::Add, addr, 5);
        assert_eq!(old, 10);
        assert_eq!(fab.word(addr), Some(15));
    }

    #[test]
    fn distinct_tile_rows_use_distinct_stripes() {
        // windows owned by different mesh rows never share a stripe
        // lock, so same-row traffic is the only contention left
        let a = stripe_of(remote_addr(3, 1, 0x40));
        let b = stripe_of(remote_addr(3, 2, 0x40));
        assert_ne!(a, b);
        // every offset within one tile's window stays on its stripe
        assert_eq!(
            stripe_of(remote_addr(3, 1, 0)),
            stripe_of(remote_addr(3, 1, 0x3FFC))
        );
    }

    #[test]
    fn ports_are_send_across_worker_threads() {
        // the striped fabric lets independent cores run on worker
        // threads: four ports AMO-increment one shared counter
        let fab = SharedFabric::new();
        let addr = remote_addr(3, 3, 0x40);
        std::thread::scope(|scope| {
            for i in 0..4u8 {
                let mut port = fab.port(i, 0);
                scope.spawn(move || {
                    for _ in 0..100 {
                        port.amo(AmoKind::Add, addr, 1);
                    }
                });
            }
        });
        assert_eq!(fab.word(addr), Some(400));
        assert_eq!(fab.accesses(), 400);
    }

    #[test]
    fn nodes_synchronize_across_real_threads() {
        // a whole Node (which owns its port) is Send: a producer core on
        // one thread raises a flag a consumer core on another spins on
        let fab = SharedFabric::new();
        let flag_addr = remote_addr(2, 0, 0x300);

        let mut p = Assembler::new();
        p.li32(Reg::A1, flag_addr as i32);
        p.inst(I::li(Reg::A2, 1));
        p.inst(I::sw(Reg::A2, Reg::A1, 0));
        p.inst(I::Ebreak);
        let mut producer = Node::new(p.assemble().unwrap(), Box::new(fab.port(1, 0)));

        let mut c = Assembler::new();
        c.li32(Reg::A1, flag_addr as i32);
        c.label("spin");
        c.inst(I::lw(Reg::A2, Reg::A1, 0));
        c.branch(BranchKind::Beq, Reg::A2, Reg::Zero, "spin");
        c.inst(I::Ebreak);
        let mut consumer = Node::new(c.assemble().unwrap(), Box::new(fab.port(2, 0)));

        std::thread::scope(|scope| {
            scope.spawn(move || producer.run(1_000).unwrap());
            scope.spawn(move || {
                consumer.run(100_000_000).unwrap();
                assert!(consumer.halted());
            });
        });
        assert_eq!(fab.word(flag_addr), Some(1));
    }

    /// The paper's inter-node flow at ISA level: a producer core remote-
    /// stores a row and raises a flag; a consumer core spins on the flag,
    /// then loads the row into its CMem.
    #[test]
    fn producer_consumer_cores_synchronize_through_flags() {
        let fab = SharedFabric::new();
        let row_ptr = RowPtr::Remote {
            x: 2,
            y: 0,
            slice: 0,
            row: 3,
        };
        let flag_addr = remote_addr(2, 0, 0x200);

        // producer at (1,0): write the row, then set the flag
        let mut p = Assembler::new();
        p.li32(Reg::A0, row_ptr.pack() as i32);
        p.inst(I::StoreRowRC {
            rs1: Reg::A0,
            slice: 1,
            row: 0,
        });
        p.li32(Reg::A1, flag_addr as i32);
        p.inst(I::li(Reg::A2, 1));
        p.inst(I::sw(Reg::A2, Reg::A1, 0));
        p.inst(I::Ebreak);
        let mut producer = Node::new(p.assemble().unwrap(), Box::new(fab.port(1, 0)));
        producer
            .cmem_mut()
            .slice_mut(1)
            .unwrap()
            .array_mut()
            .write_row(0, &[11, 22, 33, 44])
            .unwrap();

        // consumer at (2,0): spin on the flag, then fetch the row
        let mut c = Assembler::new();
        c.li32(Reg::A1, flag_addr as i32);
        c.label("spin");
        c.inst(I::lw(Reg::A2, Reg::A1, 0));
        c.branch(BranchKind::Beq, Reg::A2, Reg::Zero, "spin");
        c.li32(Reg::A0, row_ptr.pack() as i32);
        c.inst(I::LoadRowRC {
            rs1: Reg::A0,
            slice: 2,
            row: 7,
        });
        c.inst(I::Ebreak);
        let mut consumer = Node::new(c.assemble().unwrap(), Box::new(fab.port(2, 0)));

        // interleave: run the consumer a while (it spins), then the
        // producer, then let the consumer finish
        for _ in 0..20 {
            consumer.step().unwrap();
        }
        assert!(!consumer.halted());
        producer.run(100).unwrap();
        consumer.run(1_000).unwrap();
        assert_eq!(
            consumer
                .cmem()
                .slice(2)
                .unwrap()
                .array()
                .read_row(7)
                .unwrap(),
            &[11, 22, 33, 44]
        );
    }
}
