#![warn(missing_docs)]

//! # maicc-sim — full-system simulation of the many-core array
//!
//! This crate ties the workspace's substrates together and *runs* the
//! paper's execution model, checking every result against the golden
//! `maicc-nn` reference:
//!
//! * [`cosim`] — instruction-level co-simulation: several real RISC-V
//!   cores interleaved round-robin, synchronizing through remote rows and
//!   software-lock flags exactly as Algorithm 1 writes them;
//! * [`fabric`] — a shared remote-access fabric giving instruction-level
//!   [`maicc_core::node::Node`]s a common address space (remote windows +
//!   DRAM), with NoC-distance latencies; used for ISA-level
//!   producer/consumer experiments across cores;
//! * [`stream`] — the behaviour-level many-core streaming simulator of
//!   §4.2: a data-collection core transposing and injecting ifmap vectors
//!   into the mesh, a chain of computing cores with *real bit-level CMems*
//!   MAC-ing resident filters and forwarding rows, partial sums
//!   accumulated per core — one or more node groups pipelined back to
//!   back, all traffic through the flit-level `maicc-noc` mesh;
//! * [`multi_dnn`] — multi-DNN parallel inference: several networks mapped
//!   onto disjoint core regions of one array (or time-sharing the whole
//!   array), the scenario MAICC's MIMD control mode exists for (§1, §8);
//! * [`workload`] — continuous request streams over a deployment:
//!   utilization and mean response time per model partition;
//! * [`campaign`] — fault-injection campaigns: sweep CMem/NoC fault rates
//!   over a ResNet-18 segment, compare each run against the golden model,
//!   and classify outcomes (masked / SDC / detected / degraded).
//!
//! ## Example — one streaming CONV group, checked against the golden conv
//!
//! ```
//! use maicc_sim::stream::{StreamConfig, StreamSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = StreamConfig::small_test();
//! let mut sim = StreamSim::single_layer(&cfg)?;
//! let result = sim.run(2_000_000)?;
//! assert_eq!(result.ofmap, cfg.golden());
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod cosim;
pub mod fabric;
pub mod multi_dnn;
pub mod stream;
pub mod workload;

mod error;

pub use error::{ComponentError, SimError};
pub use stream::{Engine, RecoveryPolicy, RecoveryStats};
