//! Multi-DNN parallel inference on one MAICC array.
//!
//! The paper's motivation (§1) and future work (§8): the MIMD many-core
//! can host several networks at once, each on its own region of the array
//! with its own control flow. This module partitions the 210 cores among
//! models (proportionally to their work) and runs each partition's
//! heuristic mapping independently — the partitions share nothing but the
//! DRAM channels, so their latencies compose in parallel.

use crate::SimError;
use maicc_exec::config::ExecConfig;
use maicc_exec::pipeline_model::{run_network, RunReport};
use maicc_exec::segment::Strategy;
use maicc_nn::graph::Network;
use serde::{Deserialize, Serialize};

/// One model's outcome in a parallel deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// The network's name.
    pub name: String,
    /// Cores assigned to this model's partition.
    pub cores: usize,
    /// Batch-1 latency, milliseconds.
    pub latency_ms: f64,
    /// Sustained throughput, samples/s (the partition re-runs back to
    /// back).
    pub throughput: f64,
}

/// The combined outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDnnReport {
    /// Per-model reports.
    pub models: Vec<ModelReport>,
    /// Sum of per-model throughputs, samples/s.
    pub combined_throughput: f64,
}

/// Partitions `total_cores` among the models proportionally to their MAC
/// counts (minimum: each model's largest layer must fit) and maps each
/// with the heuristic strategy.
///
/// # Errors
///
/// Returns [`SimError::DoesNotFit`] if some model cannot fit its share.
pub fn parallel_inference(
    models: &[(&Network, [usize; 3])],
    total_cores: usize,
    base: &ExecConfig,
) -> Result<MultiDnnReport, SimError> {
    if models.is_empty() {
        return Err(SimError::DoesNotFit {
            reason: "no models given".into(),
        });
    }
    let macs: Vec<u64> = models
        .iter()
        .map(|(net, input)| net.total_macs(*input).map_err(SimError::from))
        .collect::<Result<_, _>>()?;
    let total_macs: u64 = macs.iter().sum();
    // each model needs at least its largest layer's node group
    let minima: Vec<usize> = models
        .iter()
        .map(|(net, input)| {
            let shapes = net.shapes(*input).map_err(SimError::from)?;
            let mut need = 2usize;
            for s in &shapes {
                let cap = maicc_exec::alloc::LayerCapacity::of(s);
                let min = cap.min_cores(&s.name).map_err(SimError::from)?;
                need = need.max(min + 1);
            }
            Ok(need)
        })
        .collect::<Result<_, SimError>>()?;
    let reserved: usize = minima.iter().sum();
    if reserved > total_cores {
        return Err(SimError::DoesNotFit {
            reason: format!(
                "models need {reserved} cores at minimum, array has {total_cores}"
            ),
        });
    }
    // distribute the remainder proportionally to work
    let spare = total_cores - reserved;
    let mut shares: Vec<usize> = minima
        .iter()
        .zip(&macs)
        .map(|(&min, &m)| min + ((m as f64 / total_macs as f64) * spare as f64).floor() as usize)
        .collect();
    let mut left = total_cores - shares.iter().sum::<usize>();
    let n_models = shares.len();
    let mut i = 0;
    while left > 0 {
        shares[i % n_models] += 1;
        left -= 1;
        i += 1;
    }

    let mut reports = Vec::with_capacity(models.len());
    let mut combined = 0.0;
    for ((net, input), cores) in models.iter().zip(&shares) {
        let cfg = ExecConfig {
            cores: *cores,
            ..*base
        };
        let run: RunReport =
            run_network(net, *input, Strategy::Heuristic, &cfg).map_err(|e| {
                SimError::DoesNotFit {
                    reason: format!("{}: {e}", net.name()),
                }
            })?;
        let latency_ms = run.total_ms(&cfg);
        let throughput = run.throughput(&cfg);
        combined += throughput;
        reports.push(ModelReport {
            name: net.name().to_string(),
            cores: *cores,
            latency_ms,
            throughput,
        });
    }
    Ok(MultiDnnReport {
        models: reports,
        combined_throughput: combined,
    })
}

/// One model's outcome under time-sharing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSharedModel {
    /// The network's name.
    pub name: String,
    /// Pure execution latency on the whole array, ms.
    pub run_ms: f64,
    /// Filter (re)load overhead charged at every swap-in, ms.
    pub swap_ms: f64,
}

/// Outcome of time-shared execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSharedReport {
    /// Per-model costs.
    pub models: Vec<TimeSharedModel>,
    /// Round length: one inference of every model, ms.
    pub round_ms: f64,
    /// Aggregate throughput across all models, samples/s.
    pub combined_throughput: f64,
}

/// The host CPU's alternative to spatial partitioning (§3.1: the host "is
/// responsible for resource management and task allocation"): run the
/// models round-robin, each getting the *whole* array, paying a filter
/// reload on every swap. Better when one model's largest layer leaves no
/// room for neighbours; worse when swap costs dominate.
///
/// # Errors
///
/// Returns [`SimError::DoesNotFit`] if a model cannot map even alone.
pub fn time_shared_inference(
    models: &[(&Network, [usize; 3])],
    base: &ExecConfig,
) -> Result<TimeSharedReport, SimError> {
    if models.is_empty() {
        return Err(SimError::DoesNotFit {
            reason: "no models given".into(),
        });
    }
    let mut out = Vec::with_capacity(models.len());
    let mut round_ms = 0.0;
    for (net, input) in models {
        let run: RunReport =
            run_network(net, *input, Strategy::Heuristic, base).map_err(|e| {
                SimError::DoesNotFit {
                    reason: format!("{}: {e}", net.name()),
                }
            })?;
        // swapping in reloads every weight byte from DRAM
        let weight_bytes: f64 = net
            .shapes(*input)
            .map_err(SimError::from)?
            .iter()
            .map(|s| (s.out_c * s.in_c * s.kernel_h * s.kernel_w) as f64)
            .sum();
        let swap_cycles = weight_bytes / base.filter_load_bw;
        let run_ms = run.total_ms(base);
        let swap_ms = base.cycles_to_ms(swap_cycles);
        round_ms += run_ms + swap_ms;
        out.push(TimeSharedModel {
            name: net.name().to_string(),
            run_ms,
            swap_ms,
        });
    }
    let combined = models.len() as f64 / (round_ms / 1e3);
    Ok(TimeSharedReport {
        models: out,
        round_ms,
        combined_throughput: combined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_nn::resnet::{resnet18, tinynet};

    #[test]
    fn two_models_share_the_array() {
        let big = resnet18(1000);
        let small = tinynet(10);
        let cfg = ExecConfig::default();
        // ResNet-18's conv4 layers alone occupy 206 nodes, so sharing an
        // array with a second model needs more than 210 cores — the
        // scaled-up deployment §6.3 argues for
        let r = parallel_inference(
            &[(&big, [64, 56, 56]), (&small, [32, 32, 32])],
            256,
            &cfg,
        )
        .unwrap();
        assert_eq!(r.models.len(), 2);
        let total: usize = r.models.iter().map(|m| m.cores).sum();
        assert_eq!(total, 256);
        // the big model gets the lion's share
        assert!(r.models[0].cores > r.models[1].cores);
        assert!(r.combined_throughput > 0.0);
    }

    #[test]
    fn small_model_latency_barely_suffers() {
        // running tinynet beside resnet costs it cores but it still beats
        // resnet's latency by a wide margin (independent MIMD partitions)
        let big = resnet18(1000);
        let small = tinynet(10);
        let cfg = ExecConfig::default();
        let r = parallel_inference(
            &[(&big, [64, 56, 56]), (&small, [32, 32, 32])],
            256,
            &cfg,
        )
        .unwrap();
        let rn = &r.models[0];
        let tn = &r.models[1];
        assert!(tn.latency_ms < rn.latency_ms / 2.0, "{tn:?} vs {rn:?}");
    }

    #[test]
    fn three_identical_models_split_evenly() {
        let a = tinynet(10);
        let cfg = ExecConfig::default();
        let r = parallel_inference(
            &[
                (&a, [32, 16, 16]),
                (&a, [32, 16, 16]),
                (&a, [32, 16, 16]),
            ],
            210,
            &cfg,
        )
        .unwrap();
        let cores: Vec<usize> = r.models.iter().map(|m| m.cores).collect();
        assert_eq!(cores.iter().sum::<usize>(), 210);
        assert!(cores.iter().all(|&c| (68..=72).contains(&c)), "{cores:?}");
        // near-identical throughputs
        let t0 = r.models[0].throughput;
        for m in &r.models {
            assert!((m.throughput - t0).abs() / t0 < 0.05);
        }
    }

    #[test]
    fn impossible_partition_reported() {
        let big = resnet18(1000);
        let cfg = ExecConfig::default();
        // conv4 layers need ~206 cores; 50 won't do
        let r = parallel_inference(&[(&big, [64, 56, 56])], 50, &cfg);
        assert!(matches!(r, Err(SimError::DoesNotFit { .. })));
    }

    #[test]
    fn empty_model_list_rejected() {
        let cfg = ExecConfig::default();
        assert!(parallel_inference(&[], 210, &cfg).is_err());
        assert!(time_shared_inference(&[], &cfg).is_err());
    }

    #[test]
    fn time_sharing_fits_where_partitioning_cannot() {
        // resnet + tinynet exceed a 210-core array spatially, but
        // time-sharing runs each alone
        let big = resnet18(1000);
        let small = tinynet(10);
        let cfg = ExecConfig::default();
        let pair: Vec<(&maicc_nn::graph::Network, [usize; 3])> =
            vec![(&big, [64, 56, 56]), (&small, [32, 32, 32])];
        assert!(parallel_inference(&pair, 210, &cfg).is_err());
        let ts = time_shared_inference(&pair, &cfg).unwrap();
        assert_eq!(ts.models.len(), 2);
        assert!(ts.round_ms > 0.0);
        assert!(ts.combined_throughput > 0.0);
    }

    #[test]
    fn swap_cost_is_visible_but_not_dominant() {
        let big = resnet18(1000);
        let cfg = ExecConfig::default();
        let ts = time_shared_inference(&[(&big, [64, 56, 56])], &cfg).unwrap();
        let m = &ts.models[0];
        assert!(m.swap_ms > 0.0);
        assert!(m.swap_ms < m.run_ms, "{m:?}");
    }

    #[test]
    fn spatial_partitioning_beats_time_sharing_for_small_models() {
        // three tinynets fit side by side; running them in parallel beats
        // swapping the whole array between them
        let a = tinynet(10);
        let cfg = ExecConfig::default();
        let trio: Vec<(&maicc_nn::graph::Network, [usize; 3])> = vec![
            (&a, [32, 16, 16]),
            (&a, [32, 16, 16]),
            (&a, [32, 16, 16]),
        ];
        let spatial = parallel_inference(&trio, 210, &cfg).unwrap();
        let shared = time_shared_inference(&trio, &cfg).unwrap();
        assert!(
            spatial.combined_throughput > shared.combined_throughput,
            "spatial {} vs shared {}",
            spatial.combined_throughput,
            shared.combined_throughput
        );
    }
}
