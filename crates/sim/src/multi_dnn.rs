//! Multi-DNN parallel inference on one MAICC array.
//!
//! The paper's motivation (§1) and future work (§8): the MIMD many-core
//! can host several networks at once, each on its own region of the array
//! with its own control flow. This module partitions the 210 cores among
//! models (proportionally to their work) and runs each partition's
//! heuristic mapping independently — the partitions share nothing but the
//! DRAM channels, so their latencies compose in parallel.
//!
//! Two fidelity levels coexist:
//!
//! * [`parallel_inference`] / [`time_shared_inference`] — the analytic
//!   pipeline model (fast, closed-form latencies);
//! * [`streamed_multi_dnn`] — each model's partition runs the *real*
//!   bit-level [`StreamSim`] (one per worker thread) under a chosen
//!   [`Engine`], producing golden-checked cycle counts that compose into
//!   a parallel makespan (max) and a time-shared round (sum).

use crate::stream::{Engine, StreamConfig, StreamSim};
use crate::SimError;
use maicc_exec::config::ExecConfig;
use maicc_exec::pipeline_model::{run_network, RunReport};
use maicc_exec::segment::Strategy;
use maicc_nn::graph::Network;
use serde::{Deserialize, Serialize};

/// One model's outcome in a parallel deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// The network's name.
    pub name: String,
    /// Cores assigned to this model's partition.
    pub cores: usize,
    /// Batch-1 latency, milliseconds.
    pub latency_ms: f64,
    /// Sustained throughput, samples/s (the partition re-runs back to
    /// back).
    pub throughput: f64,
}

/// The combined outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDnnReport {
    /// Per-model reports.
    pub models: Vec<ModelReport>,
    /// Sum of per-model throughputs, samples/s.
    pub combined_throughput: f64,
}

/// Partitions `total_cores` among the models proportionally to their MAC
/// counts (minimum: each model's largest layer must fit) and maps each
/// with the heuristic strategy.
///
/// # Errors
///
/// Returns [`SimError::DoesNotFit`] if some model cannot fit its share.
pub fn parallel_inference(
    models: &[(&Network, [usize; 3])],
    total_cores: usize,
    base: &ExecConfig,
) -> Result<MultiDnnReport, SimError> {
    if models.is_empty() {
        return Err(SimError::DoesNotFit {
            reason: "no models given".into(),
        });
    }
    let macs: Vec<u64> = models
        .iter()
        .map(|(net, input)| net.total_macs(*input).map_err(SimError::from))
        .collect::<Result<_, _>>()?;
    let total_macs: u64 = macs.iter().sum();
    // each model needs at least its largest layer's node group
    let minima: Vec<usize> = models
        .iter()
        .map(|(net, input)| {
            let shapes = net.shapes(*input).map_err(SimError::from)?;
            let mut need = 2usize;
            for s in &shapes {
                let cap = maicc_exec::alloc::LayerCapacity::of(s);
                let min = cap.min_cores(&s.name).map_err(SimError::from)?;
                need = need.max(min + 1);
            }
            Ok(need)
        })
        .collect::<Result<_, SimError>>()?;
    let reserved: usize = minima.iter().sum();
    if reserved > total_cores {
        return Err(SimError::DoesNotFit {
            reason: format!(
                "models need {reserved} cores at minimum, array has {total_cores}"
            ),
        });
    }
    // distribute the remainder proportionally to work
    let spare = total_cores - reserved;
    let mut shares: Vec<usize> = minima
        .iter()
        .zip(&macs)
        .map(|(&min, &m)| min + ((m as f64 / total_macs as f64) * spare as f64).floor() as usize)
        .collect();
    let mut left = total_cores - shares.iter().sum::<usize>();
    let n_models = shares.len();
    let mut i = 0;
    while left > 0 {
        shares[i % n_models] += 1;
        left -= 1;
        i += 1;
    }

    let mut reports = Vec::with_capacity(models.len());
    let mut combined = 0.0;
    for ((net, input), cores) in models.iter().zip(&shares) {
        let cfg = ExecConfig {
            cores: *cores,
            ..*base
        };
        let run: RunReport =
            run_network(net, *input, Strategy::Heuristic, &cfg).map_err(|e| {
                SimError::DoesNotFit {
                    reason: format!("{}: {e}", net.name()),
                }
            })?;
        let latency_ms = run.total_ms(&cfg);
        let throughput = run.throughput(&cfg);
        combined += throughput;
        reports.push(ModelReport {
            name: net.name().to_string(),
            cores: *cores,
            latency_ms,
            throughput,
        });
    }
    Ok(MultiDnnReport {
        models: reports,
        combined_throughput: combined,
    })
}

/// One model's outcome under time-sharing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSharedModel {
    /// The network's name.
    pub name: String,
    /// Pure execution latency on the whole array, ms.
    pub run_ms: f64,
    /// Filter (re)load overhead charged at every swap-in, ms.
    pub swap_ms: f64,
}

/// Outcome of time-shared execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSharedReport {
    /// Per-model costs.
    pub models: Vec<TimeSharedModel>,
    /// Round length: one inference of every model, ms.
    pub round_ms: f64,
    /// Aggregate throughput across all models, samples/s.
    pub combined_throughput: f64,
}

/// The host CPU's alternative to spatial partitioning (§3.1: the host "is
/// responsible for resource management and task allocation"): run the
/// models round-robin, each getting the *whole* array, paying a filter
/// reload on every swap. Better when one model's largest layer leaves no
/// room for neighbours; worse when swap costs dominate.
///
/// # Errors
///
/// Returns [`SimError::DoesNotFit`] if a model cannot map even alone.
pub fn time_shared_inference(
    models: &[(&Network, [usize; 3])],
    base: &ExecConfig,
) -> Result<TimeSharedReport, SimError> {
    if models.is_empty() {
        return Err(SimError::DoesNotFit {
            reason: "no models given".into(),
        });
    }
    let mut out = Vec::with_capacity(models.len());
    let mut round_ms = 0.0;
    for (net, input) in models {
        let run: RunReport =
            run_network(net, *input, Strategy::Heuristic, base).map_err(|e| {
                SimError::DoesNotFit {
                    reason: format!("{}: {e}", net.name()),
                }
            })?;
        // swapping in reloads every weight byte from DRAM
        let weight_bytes: f64 = net
            .shapes(*input)
            .map_err(SimError::from)?
            .iter()
            .map(|s| (s.out_c * s.in_c * s.kernel_h * s.kernel_w) as f64)
            .sum();
        let swap_cycles = weight_bytes / base.filter_load_bw;
        let run_ms = run.total_ms(base);
        let swap_ms = base.cycles_to_ms(swap_cycles);
        round_ms += run_ms + swap_ms;
        out.push(TimeSharedModel {
            name: net.name().to_string(),
            run_ms,
            swap_ms,
        });
    }
    let combined = models.len() as f64 / (round_ms / 1e3);
    Ok(TimeSharedReport {
        models: out,
        round_ms,
        combined_throughput: combined,
    })
}

/// One model's outcome in a cycle-modelled streamed deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamedModelReport {
    /// Workload label.
    pub name: String,
    /// Modelled cycles until the model's partition drained.
    pub cycles: u64,
    /// CMem dynamic energy, pJ.
    pub cmem_pj: f64,
    /// The streamed ofmap matched the golden reference bit-for-bit.
    pub golden_match: bool,
}

/// Outcome of running several streamed models, with both deployment
/// compositions derived from the same per-model cycle counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamedMultiDnnReport {
    /// Engine label the runs used (`event_driven` / `cycle_accurate`).
    pub engine: String,
    /// Per-model reports, in input order.
    pub models: Vec<StreamedModelReport>,
    /// Makespan when the models occupy disjoint regions of one array and
    /// run concurrently: the slowest partition's cycles.
    pub parallel_makespan_cycles: u64,
    /// Round length when the models time-share the whole array: the sum
    /// of every model's cycles.
    pub time_shared_cycles: u64,
}

/// Runs every model's workload through the bit-level streaming simulator,
/// one worker thread per model, under the given [`Engine`].
///
/// Partitions in the MIMD array share nothing but DRAM channels, so the
/// parallel makespan is the per-model maximum while time-sharing pays the
/// per-model sum — both derived from the same golden-checked runs. Both
/// engines produce identical reports; [`Engine::EventDriven`] just gets
/// there faster.
///
/// # Errors
///
/// Returns the first model's error in input order if any simulation fails
/// to build or run within `budget` cycles, and [`SimError::DoesNotFit`]
/// for an empty model list.
pub fn streamed_multi_dnn(
    models: &[(&str, StreamConfig)],
    engine: Engine,
    budget: u64,
) -> Result<StreamedMultiDnnReport, SimError> {
    streamed_multi_dnn_parallel(models, engine, budget, 1)
}

/// [`streamed_multi_dnn`] with each model's simulation itself sharded
/// over `threads` node-stepping workers ([`StreamSim::set_parallelism`],
/// the ownership-partitioned two-phase schedule of DESIGN.md §14). The
/// shard-order packet merge reproduces the sequential injection
/// schedule, so the report is bit-identical for every thread count —
/// the knob only trades wall-clock for cores.
///
/// # Errors
///
/// As [`streamed_multi_dnn`].
pub fn streamed_multi_dnn_parallel(
    models: &[(&str, StreamConfig)],
    engine: Engine,
    budget: u64,
    threads: usize,
) -> Result<StreamedMultiDnnReport, SimError> {
    if models.is_empty() {
        return Err(SimError::DoesNotFit {
            reason: "no models given".into(),
        });
    }
    let mut slots: Vec<Option<Result<StreamedModelReport, SimError>>> =
        (0..models.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((name, cfg), slot) in models.iter().zip(&mut slots) {
            scope.spawn(move || {
                *slot = Some(stream_one(name, cfg, engine, budget, threads));
            });
        }
    });
    let mut out = Vec::with_capacity(models.len());
    for slot in slots {
        out.push(slot.expect("stream worker filled its slot")?);
    }
    let makespan = out.iter().map(|m| m.cycles).max().unwrap_or(0);
    let round = out.iter().map(|m| m.cycles).sum();
    Ok(StreamedMultiDnnReport {
        engine: engine.label().to_string(),
        models: out,
        parallel_makespan_cycles: makespan,
        time_shared_cycles: round,
    })
}

fn stream_one(
    name: &str,
    cfg: &StreamConfig,
    engine: Engine,
    budget: u64,
    threads: usize,
) -> Result<StreamedModelReport, SimError> {
    let mut sim = StreamSim::new(cfg)?;
    sim.set_engine(engine);
    sim.set_parallelism(threads);
    let r = sim.run(budget)?;
    Ok(StreamedModelReport {
        name: name.to_string(),
        cycles: r.cycles,
        cmem_pj: r.cmem_pj,
        golden_match: r.ofmap == cfg.golden(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maicc_nn::resnet::{resnet18, tinynet};

    #[test]
    fn two_models_share_the_array() {
        let big = resnet18(1000);
        let small = tinynet(10);
        let cfg = ExecConfig::default();
        // ResNet-18's conv4 layers alone occupy 206 nodes, so sharing an
        // array with a second model needs more than 210 cores — the
        // scaled-up deployment §6.3 argues for
        let r = parallel_inference(
            &[(&big, [64, 56, 56]), (&small, [32, 32, 32])],
            256,
            &cfg,
        )
        .unwrap();
        assert_eq!(r.models.len(), 2);
        let total: usize = r.models.iter().map(|m| m.cores).sum();
        assert_eq!(total, 256);
        // the big model gets the lion's share
        assert!(r.models[0].cores > r.models[1].cores);
        assert!(r.combined_throughput > 0.0);
    }

    #[test]
    fn small_model_latency_barely_suffers() {
        // running tinynet beside resnet costs it cores but it still beats
        // resnet's latency by a wide margin (independent MIMD partitions)
        let big = resnet18(1000);
        let small = tinynet(10);
        let cfg = ExecConfig::default();
        let r = parallel_inference(
            &[(&big, [64, 56, 56]), (&small, [32, 32, 32])],
            256,
            &cfg,
        )
        .unwrap();
        let rn = &r.models[0];
        let tn = &r.models[1];
        assert!(tn.latency_ms < rn.latency_ms / 2.0, "{tn:?} vs {rn:?}");
    }

    #[test]
    fn three_identical_models_split_evenly() {
        let a = tinynet(10);
        let cfg = ExecConfig::default();
        let r = parallel_inference(
            &[
                (&a, [32, 16, 16]),
                (&a, [32, 16, 16]),
                (&a, [32, 16, 16]),
            ],
            210,
            &cfg,
        )
        .unwrap();
        let cores: Vec<usize> = r.models.iter().map(|m| m.cores).collect();
        assert_eq!(cores.iter().sum::<usize>(), 210);
        assert!(cores.iter().all(|&c| (68..=72).contains(&c)), "{cores:?}");
        // near-identical throughputs
        let t0 = r.models[0].throughput;
        for m in &r.models {
            assert!((m.throughput - t0).abs() / t0 < 0.05);
        }
    }

    #[test]
    fn impossible_partition_reported() {
        let big = resnet18(1000);
        let cfg = ExecConfig::default();
        // conv4 layers need ~206 cores; 50 won't do
        let r = parallel_inference(&[(&big, [64, 56, 56])], 50, &cfg);
        assert!(matches!(r, Err(SimError::DoesNotFit { .. })));
    }

    #[test]
    fn empty_model_list_rejected() {
        let cfg = ExecConfig::default();
        assert!(parallel_inference(&[], 210, &cfg).is_err());
        assert!(time_shared_inference(&[], &cfg).is_err());
    }

    #[test]
    fn time_sharing_fits_where_partitioning_cannot() {
        // resnet + tinynet exceed a 210-core array spatially, but
        // time-sharing runs each alone
        let big = resnet18(1000);
        let small = tinynet(10);
        let cfg = ExecConfig::default();
        let pair: Vec<(&maicc_nn::graph::Network, [usize; 3])> =
            vec![(&big, [64, 56, 56]), (&small, [32, 32, 32])];
        assert!(parallel_inference(&pair, 210, &cfg).is_err());
        let ts = time_shared_inference(&pair, &cfg).unwrap();
        assert_eq!(ts.models.len(), 2);
        assert!(ts.round_ms > 0.0);
        assert!(ts.combined_throughput > 0.0);
    }

    #[test]
    fn swap_cost_is_visible_but_not_dominant() {
        let big = resnet18(1000);
        let cfg = ExecConfig::default();
        let ts = time_shared_inference(&[(&big, [64, 56, 56])], &cfg).unwrap();
        let m = &ts.models[0];
        assert!(m.swap_ms > 0.0);
        assert!(m.swap_ms < m.run_ms, "{m:?}");
    }

    #[test]
    fn streamed_multi_dnn_checks_golden_and_composes_cycles() {
        let models = [
            ("small", StreamConfig::small_test()),
            ("two_layer", StreamConfig::two_layer_test()),
        ];
        let r = streamed_multi_dnn(&models, Engine::EventDriven, 5_000_000).unwrap();
        assert_eq!(r.engine, "event_driven");
        assert_eq!(r.models.len(), 2);
        assert!(r.models.iter().all(|m| m.golden_match), "{:?}", r.models);
        assert!(r.models.iter().all(|m| m.cycles > 0 && m.cmem_pj > 0.0));
        let max = r.models.iter().map(|m| m.cycles).max().unwrap();
        let sum: u64 = r.models.iter().map(|m| m.cycles).sum();
        assert_eq!(r.parallel_makespan_cycles, max);
        assert_eq!(r.time_shared_cycles, sum);
        assert!(r.parallel_makespan_cycles < r.time_shared_cycles);
    }

    #[test]
    fn streamed_multi_dnn_engines_agree() {
        let models = [
            ("small", StreamConfig::small_test()),
            ("two_layer", StreamConfig::two_layer_test()),
        ];
        let fast = streamed_multi_dnn(&models, Engine::EventDriven, 5_000_000).unwrap();
        let oracle = streamed_multi_dnn(&models, Engine::CycleAccurate, 5_000_000).unwrap();
        assert_eq!(fast.models, oracle.models);
        assert_eq!(
            fast.parallel_makespan_cycles,
            oracle.parallel_makespan_cycles
        );
        assert_eq!(fast.time_shared_cycles, oracle.time_shared_cycles);
    }

    #[test]
    fn streamed_multi_dnn_rejects_empty_list() {
        assert!(streamed_multi_dnn(&[], Engine::EventDriven, 1_000).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Node-step sharding inside each model's simulation is an
        /// implementation detail: for random one-layer workloads the
        /// report is bit-identical across 1/2/4/8 stepping threads and
        /// both engines.
        #[test]
        fn prop_streamed_report_is_thread_and_engine_invariant(
            wide_in in proptest::prelude::any::<bool>(),
            wide_out in proptest::prelude::any::<bool>(),
            hw in 5usize..=7,
            salt in 0usize..16,
        ) {
            let in_c = if wide_in { 16 } else { 8 };
            let out_c = if wide_out { 8 } else { 4 };
            let cfg = StreamConfig {
                layers: vec![crate::stream::test_layer(in_c, out_c, salt)],
                input: crate::stream::test_input(in_c, hw, hw),
            };
            let models = [("a", cfg.clone()), ("b", StreamConfig::small_test())];
            let baseline =
                streamed_multi_dnn_parallel(&models, Engine::EventDriven, 5_000_000, 1)
                    .unwrap();
            proptest::prop_assert!(baseline.models.iter().all(|m| m.golden_match));
            for engine in [Engine::EventDriven, Engine::CycleAccurate] {
                for threads in [1usize, 2, 4, 8] {
                    let r =
                        streamed_multi_dnn_parallel(&models, engine, 5_000_000, threads)
                            .unwrap();
                    proptest::prop_assert_eq!(
                        &r.models, &baseline.models,
                        "engine {:?} threads {}", engine, threads
                    );
                    proptest::prop_assert_eq!(
                        r.parallel_makespan_cycles,
                        baseline.parallel_makespan_cycles
                    );
                    proptest::prop_assert_eq!(
                        r.time_shared_cycles,
                        baseline.time_shared_cycles
                    );
                }
            }
        }
    }

    #[test]
    fn spatial_partitioning_beats_time_sharing_for_small_models() {
        // three tinynets fit side by side; running them in parallel beats
        // swapping the whole array between them
        let a = tinynet(10);
        let cfg = ExecConfig::default();
        let trio: Vec<(&maicc_nn::graph::Network, [usize; 3])> = vec![
            (&a, [32, 16, 16]),
            (&a, [32, 16, 16]),
            (&a, [32, 16, 16]),
        ];
        let spatial = parallel_inference(&trio, 210, &cfg).unwrap();
        let shared = time_shared_inference(&trio, &cfg).unwrap();
        assert!(
            spatial.combined_throughput > shared.combined_throughput,
            "spatial {} vs shared {}",
            spatial.combined_throughput,
            shared.combined_throughput
        );
    }
}
