//! Behaviour-level many-core streaming simulation of §4.2.
//!
//! Every structural element of Figure 7 exists here:
//!
//! * a **data-collection core** per layer that assembles ifmap pixels,
//!   transposes them (charged at the measured per-byte cost) and injects
//!   the 8 transposed rows as 9-flit packets into the *real* `maicc-noc`
//!   mesh;
//! * a chain of **computing cores**, each owning a *real bit-level*
//!   [`maicc_sram::cmem::Cmem`] with resident filter vectors; an arriving
//!   vector is written into slice 0, broadcast with `Move.C`, MAC-ed
//!   against every resident filter vector, and forwarded to the next core;
//! * **window flow control**: the first computing core credits the DC per
//!   consumed pixel — Algorithm 1's `p`/`nextp` flags;
//! * **inter-layer pipelining**: an ofmap value is requantized and sent to
//!   the next layer's DC the moment its window completes, so the next
//!   layer starts long before this one finishes.
//!
//! The final ofmap must equal the golden `maicc-nn` reference bit-exactly,
//! for any number of chained layers.
//!
//! Two execution engines drive the same model (see [`Engine`]): the
//! **event-driven** default jumps the clock across cycles in which nothing
//! can happen (mesh drained, every node with pending work still busy),
//! while the **cycle-accurate** oracle ticks every cycle. Both produce
//! bit-identical [`StreamResult`]s, cycle counts, energy, and fault
//! observations — regression- and proptest-enforced below.

use crate::{ComponentError, SimError};
use maicc_exec::mapping::{place_groups_avoiding, Tile};
use maicc_nn::layer::ConvLayer;
use maicc_nn::tensor::Tensor;
use maicc_noc::{
    Coord, Delivered, Mesh, NocError, NocFaultPlan, NocFaultStats, NocStats, Packet, RetryPolicy,
    ROW_PACKET_FLITS, WORD_PACKET_FLITS,
};
use maicc_sram::cmem::Cmem;
use maicc_sram::ecc::{EccMode, EccStats};
use maicc_sram::fault::{FaultPlan, FaultStats};
use maicc_sram::{timing, transpose, SramError};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Per-pixel transpose cost at the DC, cycles per byte.
const TRANSPOSE_PER_BYTE: u64 = 3;
/// Row send issue cost, cycles per row.
const ROW_SEND: u64 = 3;
/// Accumulate cost per vector MAC in the scalar pipeline.
const ACCUM_PER_MAC: u64 = 4;
/// Auxiliary cost per completed ofmap value (ReLU + requantize + store).
const AUX_PER_VALUE: u64 = 8;
/// Pixels the DC may have in flight before waiting for credits.
const CREDIT_WINDOW: usize = 2;
/// Credit-stall age beyond which a budget exhaustion is blamed on the
/// wedged router instead of reported as a bare timeout. Larger than any
/// transient congestion the streaming protocol produces.
const WEDGE_STALL_AGE: u64 = 1024;

/// A multi-layer streaming workload (valid convolutions, fused ReLU +
/// requantization as in the golden model).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The chained convolution layers (padding must be 0).
    pub layers: Vec<ConvLayer>,
    /// The external input, `[C, H, W]`.
    pub input: Tensor<i8>,
}

impl StreamConfig {
    /// A one-layer test: 4 filters of 3×3×16 on a 6×6×16 ifmap.
    #[must_use]
    pub fn small_test() -> Self {
        StreamConfig {
            layers: vec![test_layer(16, 4, 0)],
            input: test_input(16, 6, 6),
        }
    }

    /// A two-layer pipeline: 8 filters of 3×3×16, then 4 of 3×3×8.
    #[must_use]
    pub fn two_layer_test() -> Self {
        StreamConfig {
            layers: vec![test_layer(16, 8, 0), test_layer(8, 4, 1)],
            input: test_input(16, 8, 8),
        }
    }

    /// A downscaled ResNet-18 stage segment: the stride-2 head of a stage
    /// followed by a stride-1 conv — the `conv3_1`/`conv3_2` pattern at
    /// reduced channel count so the bit-level simulation stays tractable.
    /// This is the default fault-campaign workload.
    #[must_use]
    pub fn resnet18_segment() -> Self {
        let mut head = test_layer(16, 8, 9);
        head.shape.stride = 2;
        StreamConfig {
            layers: vec![head, test_layer(8, 8, 10)],
            input: test_input(16, 11, 11),
        }
    }

    /// Golden reference: the chained mixed layers, flattened `[M, OH, OW]`.
    ///
    /// # Panics
    ///
    /// Panics if the layer chain is shape-inconsistent (a configuration
    /// bug, not a data condition).
    #[must_use]
    pub fn golden(&self) -> Vec<i8> {
        let mut t = self.input.clone();
        for l in &self.layers {
            t = golden_mixed(&t, l);
        }
        t.data().to_vec()
    }
}

pub(crate) fn test_layer(in_c: usize, out_c: usize, salt: usize) -> ConvLayer {
    use maicc_nn::quant::Requantizer;
    use maicc_nn::tensor::ConvShape;
    ConvLayer {
        shape: ConvShape {
            out_channels: out_c,
            in_channels: in_c,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
        },
        weights: Tensor::from_fn(&[out_c, in_c, 3, 3], |i| {
            (((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3] * 3 + salt * 7) % 7) as i8) - 3
        }),
        bias: (0..out_c).map(|m| ((m * 13 + salt) % 9) as i32 - 4).collect(),
        requant: Requantizer::from_real_multiplier(0.05, 0),
        relu: true,
        pool: None,
    }
}

pub(crate) fn test_input(c: usize, h: usize, w: usize) -> Tensor<i8> {
    Tensor::from_fn(&[c, h, w], |i| (((i[0] * 7 + i[1] * 3 + i[2]) % 11) as i8) - 5)
}

/// Golden mixed layer (conv → ReLU → requantize), matching the CC's
/// per-value auxiliary path.
fn golden_mixed(input: &Tensor<i8>, layer: &ConvLayer) -> Tensor<i8> {
    use maicc_nn::layer::{conv2d_i8, relu_i32, requantize};
    let acc = conv2d_i8(input, layer).expect("consistent layer chain");
    let acc = if layer.relu { relu_i32(&acc) } else { acc };
    requantize(&acc, &layer.requant)
}

/// Messages flowing through the mesh.
#[derive(Debug, Clone, PartialEq)]
enum Msg {
    /// One transposed ifmap row (9 flits).
    Row {
        layer: usize,
        pixel: usize,
        row: u8,
        lanes: Vec<u64>,
    },
    /// One completed ofmap value (2 flits).
    Value { layer: usize, idx: usize, value: i8 },
    /// Flow-control credit back to the DC (1 flit).
    Credit { layer: usize },
}

/// `(channels, height, width)` of a layer's ifmap and ofmap.
type LayerDims = ((usize, usize, usize), (usize, usize, usize));

/// Which simulation core drives [`StreamSim::run`] (and everything built
/// on it: fault campaigns, streamed multi-DNN deployments).
///
/// Both engines execute the *same* model and produce bit-identical
/// [`StreamResult`]s, cycle counts, energy meters, and fault-plan
/// observations; the event-driven engine merely refuses to spend host
/// time on cycles in which nothing can happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Next-event skip-ahead (the default): whenever the mesh is drained
    /// and every node with pending work is still busy, the clock jumps
    /// straight to the earliest `busy_until` expiry instead of ticking
    /// through the idle gap one cycle at a time.
    #[default]
    EventDriven,
    /// The original per-cycle loop, kept as the equivalence oracle.
    CycleAccurate,
}

impl Engine {
    /// Stable lower-snake-case label (used in bench JSON headers).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Engine::EventDriven => "event_driven",
            Engine::CycleAccurate => "cycle_accurate",
        }
    }
}

/// Checkpoint/replay re-execution policy: how [`StreamSim::run`] reacts
/// when a *detected* fault surfaces — an uncorrectable ECC error, a dead
/// CMem slice, or NoC traffic lost after exhausting retransmissions.
///
/// Recovery is strictly opt-in: with no policy attached the simulator
/// behaves exactly as before (detected faults propagate as typed errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total rollback/rebuild attempts before the error propagates.
    pub max_replays: u32,
    /// On a *hard* fault (a dead CMem slice), rebuild the whole fabric
    /// with [`place_groups_avoiding`] steering around the failed tile.
    pub remap: bool,
    /// Checkpoint cadence: snapshot architectural state every time this
    /// many more ofmap values have reached the sink. The trigger counts
    /// *logical* progress, so both [`Engine`]s checkpoint at identical
    /// points.
    pub checkpoint_values: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_replays: 16,
            remap: true,
            checkpoint_values: 16,
        }
    }
}

/// Counters of recovery activity on one [`StreamSim`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Checkpoints taken (including the initial one).
    pub checkpoints: u64,
    /// Rollback/rebuild attempts performed.
    pub replays: u32,
    /// Replays that rebuilt the fabric on a remapped placement.
    pub remaps: u32,
    /// Cycles of discarded work re-executed after rollbacks: the final
    /// [`StreamResult::cycles`] includes them.
    pub replayed_cycles: u64,
    /// CMem energy of discarded work, pJ: included in
    /// [`StreamResult::cmem_pj`].
    pub replayed_pj: f64,
}

/// A snapshot of everything a rollback must restore.
struct Checkpoint {
    nodes: Vec<SimNode>,
    mesh: Mesh<Msg>,
    fault: Option<(usize, usize)>,
    /// `sink values / checkpoint_values` when the snapshot was taken.
    mark: usize,
    /// NoC packets lost at snapshot time; a snapshot is only replaced
    /// while this count is unchanged, so rollbacks always land *before*
    /// an unrecoverable loss.
    lost: u64,
}

/// One shard of the per-cycle node step, handed to the pool worker that
/// owns it.
///
/// Carries a raw slice so the borrow can cross an `mpsc` channel. Safety
/// protocol, upheld by [`StepPool::step_shards`]: shards are disjoint,
/// the pool owner touches no node while a task is outstanding, and every
/// dispatched task's reply is collected before `step_shards` returns.
struct StepTask {
    nodes: *mut SimNode,
    len: usize,
    now: u64,
    /// Per-shard packet scratch, round-tripped with the reply so neither
    /// side allocates in steady state.
    out: Vec<Packet<Msg>>,
}

// SAFETY: a task grants exclusive access to its disjoint node shard until
// the matching `StepReply` is sent back (see the protocol on `StepTask`).
unsafe impl Send for StepTask {}

/// A worker's answer: the shard's emitted packets + its first error,
/// tagged with the failing node's coordinates so recovery can localize
/// (and remap around) the faulty tile.
struct StepReply {
    out: Vec<Packet<Msg>>,
    res: Result<(), (Coord, SimError)>,
}

/// A persistent worker pool for the sharded node step.
///
/// Spawned once per [`StreamSim::run`] and held across the whole loop
/// (the workers block on their task channels between stepping cycles), it
/// replaces the previous per-cycle `thread::scope`, whose spawn/join cost
/// every single cycle outweighed the sharded stepping it bought.
struct StepPool {
    /// Task/reply channel pair per worker, in shard order.
    workers: Vec<(Sender<StepTask>, Receiver<StepReply>)>,
    /// Per-worker packet buffers, reused across stepping cycles.
    scratch: Vec<Vec<Packet<Msg>>>,
}

impl StepPool {
    /// Spawns `threads` workers onto `scope`; they exit when the pool is
    /// dropped (their task senders hang up).
    fn start<'scope>(
        scope: &'scope std::thread::Scope<'scope, '_>,
        threads: usize,
        dims: &'scope [LayerDims],
        cfg: &'scope StreamConfig,
    ) -> Self {
        let workers = (0..threads)
            .map(|_| {
                let (task_tx, task_rx) = channel::<StepTask>();
                let (reply_tx, reply_rx) = channel::<StepReply>();
                scope.spawn(move || {
                    while let Ok(mut t) = task_rx.recv() {
                        // SAFETY: the shard is disjoint and exclusively
                        // this worker's until the reply below is sent.
                        let shard = unsafe { std::slice::from_raw_parts_mut(t.nodes, t.len) };
                        let mut res = Ok(());
                        for node in shard {
                            // `node_pending` exactly certifies a no-op
                            // step, so skipping non-pending nodes is
                            // bit-identical to stepping them
                            if node.busy_until > t.now || !node_pending(node) {
                                continue;
                            }
                            let coord = node.coord;
                            if let Err(e) = step_node(node, t.now, dims, cfg, &mut t.out, true) {
                                res = Err((coord, e));
                                break;
                            }
                        }
                        if reply_tx.send(StepReply { out: t.out, res }).is_err() {
                            break;
                        }
                    }
                });
                (task_tx, reply_rx)
            })
            .collect();
        StepPool {
            workers,
            scratch: vec![Vec::new(); threads],
        }
    }

    /// The compute half of the two-phase schedule: every worker steps the
    /// contiguous shard of nodes it owns (fixed `chunk`-sized index
    /// ranges, computed once per run), lock-free, buffering its emitted
    /// packets into its own queue. On return `self.scratch` holds the
    /// per-shard output queues in shard order — which equals node-index
    /// order — ready for [`Mesh::send_from_shards`], the exchange half.
    fn step_shards(
        &mut self,
        nodes: &mut [SimNode],
        chunk: usize,
        now: u64,
    ) -> Result<(), (Coord, SimError)> {
        let mut dispatched = 0;
        for (w, shard) in nodes.chunks_mut(chunk).enumerate() {
            let out = std::mem::take(&mut self.scratch[w]);
            self.workers[w]
                .0
                .send(StepTask {
                    nodes: shard.as_mut_ptr(),
                    len: shard.len(),
                    now,
                    out,
                })
                .expect("step worker alive");
            dispatched += 1;
        }
        // collect every reply (restoring exclusive access to the nodes)
        // before reporting the first shard's error
        let mut first_err = Ok(());
        for w in 0..dispatched {
            let reply = self.workers[w].1.recv().expect("step worker alive");
            if first_err.is_ok() {
                first_err = reply.res;
            }
            self.scratch[w] = reply.out;
        }
        first_err
    }
}

fn node_pending(n: &SimNode) -> bool {
    match &n.role {
        Role::Cc { .. } | Role::Sink { .. } => !n.inbox.is_empty(),
        Role::Dc {
            staged,
            next_pixel,
            total_pixels,
            in_flight,
            ..
        } => {
            !n.inbox.is_empty()
                || (*next_pixel < *total_pixels
                    && *in_flight < CREDIT_WINDOW
                    && staged.contains_key(next_pixel))
        }
    }
}

/// A resident filter vector on one CC.
#[derive(Debug, Clone, Copy)]
struct Resident {
    local_filter: usize,
    global_filter: usize,
    /// 256-channel group index (for layers with C > 256).
    group: usize,
    ky: usize,
    kx: usize,
    slice: usize,
    row: usize,
}

#[derive(Clone)]
enum Role {
    Dc {
        layer: usize,
        /// pixels of the layer's ifmap, staged as complete channel vectors
        staged: HashMap<usize, Vec<i8>>,
        /// received channel counts per pixel (layers > 0)
        partial: HashMap<usize, (Vec<i8>, usize)>,
        next_pixel: usize,
        total_pixels: usize,
        in_flight: usize,
        first_cc: Coord,
    },
    Cc {
        layer: usize,
        cmem: Box<Cmem>,
        residents: Vec<Resident>,
        /// Byte-form shadow of each resident filter vector (same index as
        /// `residents`, truncated to the group's live channel span). The
        /// partitioned engine uses these to compute the dot product
        /// host-side whenever [`Cmem::mac_shortcut_ok`] certifies the
        /// bit-plane MAC is a pure function of the operands; the CMem
        /// arrays stay the architectural source of truth and every other
        /// operation (ingest, broadcast, energy) still runs on them.
        shadow_w: Vec<Vec<i8>>,
        /// rows collected for the pixel currently arriving
        arriving: HashMap<usize, Vec<Option<Vec<u64>>>>,
        /// i32 partial sums, `[local filters × OH × OW]`
        psums: Vec<i32>,
        next_hop: Option<Coord>,
        value_target: Coord,
        is_first: bool,
        dc: Coord,
    },
    Sink {
        values: HashMap<usize, i8>,
        expected: usize,
    },
}

#[derive(Clone)]
struct SimNode {
    coord: Coord,
    busy_until: u64,
    inbox: VecDeque<Msg>,
    role: Role,
}

/// Aggregate result of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResult {
    /// The final layer's ofmap, `[M, OH, OW]` flattened, i8.
    pub ofmap: Vec<i8>,
    /// Total cycles until everything drained.
    pub cycles: u64,
    /// Mesh statistics (packets, flit-hops for the energy model).
    pub noc: NocStats,
    /// Total CMem dynamic energy, pJ (from the real CMem meters).
    pub cmem_pj: f64,
}

/// The streaming simulator.
pub struct StreamSim {
    cfg: StreamConfig,
    mesh: Mesh<Msg>,
    nodes: Vec<SimNode>,
    tile_of: HashMap<(u8, u8), usize>,
    /// Fault injection: flip one bit of (layer, pixel)'s first row in
    /// flight.
    fault: Option<(usize, usize)>,
    /// Worker threads for the per-cycle node step (1 = sequential).
    parallelism: usize,
    /// Which simulation core drives `run`.
    engine: Engine,
    /// Checkpoint/replay policy; `None` (default) = detected faults
    /// propagate as typed errors exactly as before.
    recovery: Option<RecoveryPolicy>,
    recovery_stats: RecoveryStats,
    checkpoint: Option<Box<Checkpoint>>,
    /// Last `sink values / checkpoint_values` quotient a snapshot covered.
    checkpoint_mark: usize,
    /// Coordinates of the node whose step raised the last typed error.
    fault_coord: Option<Coord>,
    /// Cycles at which checkpoints of the current run were taken, in
    /// order. Rollbacks truncate past entries; a remap rebuild clears it.
    ckpt_log: Vec<u64>,
    /// Tiles the placement must skip (grows as remap-recovery retires
    /// tiles with hard faults).
    avoid: Vec<Tile>,
    /// Remembered fabric configuration, re-applied after a remap rebuild.
    cmem_plan: Option<FaultPlan>,
    targeted_plans: Vec<(Coord, FaultPlan)>,
    noc_plan: Option<NocFaultPlan>,
    ecc_mode: EccMode,
}

impl std::fmt::Debug for StreamSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSim")
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

fn to_coord(t: Tile) -> Coord {
    Coord::new(t.x, t.y)
}

impl StreamSim {
    /// Builds the simulator for a single-layer config (doctest helper).
    ///
    /// # Errors
    ///
    /// As for [`StreamSim::new`].
    pub fn single_layer(cfg: &StreamConfig) -> Result<Self, SimError> {
        Self::new(cfg)
    }

    /// Builds node groups for every layer, places them zig-zag, and loads
    /// the filters into the computing cores' CMems.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DoesNotFit`] if a layer needs more vector slots
    /// than the chain's cores provide or the placement overflows the array.
    pub fn new(cfg: &StreamConfig) -> Result<Self, SimError> {
        Self::new_avoiding(cfg, &[])
    }

    /// Like [`StreamSim::new`], but remaps every node group around the
    /// given failed tiles: the zig-zag placement skips the holes, so a
    /// marked-dead tile hosts neither a DC, a computing core, nor the
    /// sink. The simulation then runs on the degraded placement.
    ///
    /// # Errors
    ///
    /// As for [`StreamSim::new`], plus a typed
    /// [`maicc_exec::ExecError::PlacementOverflow`] (chained through
    /// [`SimError::Component`]) when too few healthy tiles remain.
    pub fn new_avoiding(cfg: &StreamConfig, failed: &[Tile]) -> Result<Self, SimError> {
        if cfg.layers.is_empty() {
            return Err(SimError::DoesNotFit {
                reason: "streaming workload has no layers".into(),
            });
        }
        // shapes along the chain
        let mut dims = Vec::new();
        let mut cur = (cfg.input.shape()[0], cfg.input.shape()[1], cfg.input.shape()[2]);
        for l in &cfg.layers {
            let s = &l.shape;
            if s.padding != 0 || s.stride == 0 || s.stride > 2 {
                return Err(SimError::DoesNotFit {
                    reason: "streaming sim supports valid convolutions with stride 1 or 2".into(),
                });
            }
            if s.in_channels != cur.0 {
                return Err(SimError::DoesNotFit {
                    reason: format!("channel mismatch: {} vs {}", s.in_channels, cur.0),
                });
            }
            let oh = (cur.1 - s.kernel_h) / s.stride + 1;
            let ow = (cur.2 - s.kernel_w) / s.stride + 1;
            dims.push((cur, (s.out_channels, oh, ow)));
            cur = (s.out_channels, oh, ow);
        }

        // computing cores per layer: 5 filter-vector slots per slice × 7
        let mut group_sizes = Vec::new();
        let mut placements_per_layer = Vec::new();
        for l in &cfg.layers {
            let s = &l.shape;
            let groups = s.in_channels.div_ceil(256);
            let vec_per_filter = s.kernel_h * s.kernel_w * groups;
            let per_core = 49 / vec_per_filter;
            if per_core == 0 {
                return Err(SimError::DoesNotFit {
                    reason: format!("filter {}x{} exceeds one CMem", s.kernel_h, s.kernel_w),
                });
            }
            let ccs = s.out_channels.div_ceil(per_core);
            group_sizes.push(ccs);
            placements_per_layer.push(per_core);
        }
        // one extra tile for the sink
        let mut sizes_with_sink = group_sizes.clone();
        sizes_with_sink.push(0); // the sink "group" is just its DC tile
        let placed = place_groups_avoiding(&sizes_with_sink, failed)?;

        let mut nodes = Vec::new();
        let mut tile_of = HashMap::new();
        let sink_coord = to_coord(placed.last().expect("sink placed").dc);

        for (li, l) in cfg.layers.iter().enumerate() {
            let g = &placed[li];
            let (in_dim, out_dim) = dims[li];
            let s = &l.shape;
            let per_core = placements_per_layer[li];
            let first_cc = to_coord(g.computing[0]);
            // the DC
            let dc_coord = to_coord(g.dc);
            let mut staged = HashMap::new();
            if li == 0 {
                for y in 0..in_dim.1 {
                    for x in 0..in_dim.2 {
                        let v: Vec<i8> = (0..in_dim.0)
                            .map(|c| cfg.input.get(&[c, y, x]))
                            .collect();
                        staged.insert(y * in_dim.2 + x, v);
                    }
                }
            }
            nodes.push(SimNode {
                coord: dc_coord,
                busy_until: 0,
                inbox: VecDeque::new(),
                role: Role::Dc {
                    layer: li,
                    staged,
                    partial: HashMap::new(),
                    next_pixel: 0,
                    total_pixels: in_dim.1 * in_dim.2,
                    in_flight: 0,
                    first_cc,
                },
            });
            tile_of.insert((dc_coord.x, dc_coord.y), nodes.len() - 1);

            // the CCs
            let next_dc = if li + 1 < cfg.layers.len() {
                to_coord(placed[li + 1].dc)
            } else {
                sink_coord
            };
            for (k, tile) in g.computing.iter().enumerate() {
                let coord = to_coord(*tile);
                let lo = k * per_core;
                let hi = ((k + 1) * per_core).min(s.out_channels);
                let mut cmem = Box::new(Cmem::new());
                let mut residents = Vec::new();
                let mut shadow_w = Vec::new();
                let groups = s.in_channels.div_ceil(256);
                for (local, f) in (lo..hi).enumerate() {
                    for q in 0..groups {
                        for ky in 0..s.kernel_h {
                            for kx in 0..s.kernel_w {
                                let v = residents.len();
                                let slice = 1 + (v % 7);
                                let row = 8 + 8 * (v / 7);
                                let filt: Vec<i8> = (0..256)
                                    .map(|c| {
                                        let ch = q * 256 + c;
                                        if ch < s.in_channels {
                                            l.weights.get(&[f, ch, ky, kx])
                                        } else {
                                            0
                                        }
                                    })
                                    .collect();
                                cmem.write_vector_i8(slice, row, &filt)?;
                                // channels past the layer's span are zero
                                // in both operands, so the shadow keeps
                                // only the live prefix
                                let span = (s.in_channels - q * 256).min(256);
                                shadow_w.push(filt[..span].to_vec());
                                residents.push(Resident {
                                    local_filter: local,
                                    global_filter: f,
                                    group: q,
                                    ky,
                                    kx,
                                    slice,
                                    row,
                                });
                            }
                        }
                    }
                }
                let psums: Vec<i32> = (lo..hi)
                    .flat_map(|f| std::iter::repeat_n(l.bias[f], out_dim.1 * out_dim.2))
                    .collect();
                let next_hop = g.computing.get(k + 1).map(|t| to_coord(*t));
                nodes.push(SimNode {
                    coord,
                    busy_until: 0,
                    inbox: VecDeque::new(),
                    role: Role::Cc {
                        layer: li,
                        cmem,
                        residents,
                        shadow_w,
                        arriving: HashMap::new(),
                        psums,
                        next_hop,
                        value_target: next_dc,
                        is_first: k == 0,
                        dc: dc_coord,
                    },
                });
                tile_of.insert((coord.x, coord.y), nodes.len() - 1);
            }
        }

        // the sink
        let last_out = dims.last().expect("at least one layer").1;
        nodes.push(SimNode {
            coord: sink_coord,
            busy_until: 0,
            inbox: VecDeque::new(),
            role: Role::Sink {
                values: HashMap::new(),
                expected: last_out.0 * last_out.1 * last_out.2,
            },
        });
        tile_of.insert((sink_coord.x, sink_coord.y), nodes.len() - 1);

        Ok(StreamSim {
            cfg: cfg.clone(),
            mesh: Mesh::new(16, 16),
            nodes,
            tile_of,
            fault: None,
            parallelism: 1,
            engine: Engine::default(),
            recovery: None,
            recovery_stats: RecoveryStats::default(),
            checkpoint: None,
            checkpoint_mark: 0,
            fault_coord: None,
            ckpt_log: Vec::new(),
            avoid: failed.to_vec(),
            cmem_plan: None,
            targeted_plans: Vec::new(),
            noc_plan: None,
            ecc_mode: EccMode::Off,
        })
    }

    /// The model's weight image: every 256-byte zero-padded filter vector
    /// in the exact order [`StreamSim::new_avoiding`] streams them into
    /// the computing cores' CMems (layer-major, then core, then resident
    /// slot). The order is a function of the [`StreamConfig`] alone —
    /// placement never enters — so a warm start can assert image equality
    /// without building a fabric.
    #[must_use]
    pub fn weight_image(cfg: &StreamConfig) -> Vec<Vec<i8>> {
        let mut image = Vec::new();
        for l in &cfg.layers {
            let s = &l.shape;
            let groups = s.in_channels.div_ceil(256);
            let per_core = 49 / (s.kernel_h * s.kernel_w * groups);
            if per_core == 0 {
                continue; // new_avoiding rejects such configs outright
            }
            let ccs = s.out_channels.div_ceil(per_core);
            for k in 0..ccs {
                let lo = k * per_core;
                let hi = ((k + 1) * per_core).min(s.out_channels);
                for f in lo..hi {
                    for q in 0..groups {
                        for ky in 0..s.kernel_h {
                            for kx in 0..s.kernel_w {
                                let filt: Vec<i8> = (0..256)
                                    .map(|c| {
                                        let ch = q * 256 + c;
                                        if ch < s.in_channels {
                                            l.weights.get(&[f, ch, ky, kx])
                                        } else {
                                            0
                                        }
                                    })
                                    .collect();
                                image.push(filt);
                            }
                        }
                    }
                }
            }
        }
        image
    }

    /// Like [`StreamSim::new_avoiding`], but warm-starts on weights the
    /// caller asserts are already resident in CMem: the passed image must
    /// equal this config's own stream order byte-for-byte, or the build is
    /// refused. The simulation then proceeds exactly as a cold build
    /// would — [`StreamResult::cycles`] and [`StreamResult::cmem_pj`]
    /// never included a weight-load phase (bulk weight DMA is priced by
    /// the serving layer's memory-tier model, not the compute meter), so
    /// the warm entry point's job is the correctness gate: a hit on stale
    /// or foreign resident bytes fails loudly instead of computing with
    /// the wrong weights.
    ///
    /// # Errors
    ///
    /// As for [`StreamSim::new_avoiding`], plus [`SimError::DoesNotFit`]
    /// when `resident` differs from the config's weight image.
    pub fn new_avoiding_warm(
        cfg: &StreamConfig,
        failed: &[Tile],
        resident: &[Vec<i8>],
    ) -> Result<Self, SimError> {
        if resident != Self::weight_image(cfg).as_slice() {
            return Err(SimError::DoesNotFit {
                reason: "warm start: resident weight image does not match the model".into(),
            });
        }
        Self::new_avoiding(cfg, failed)
    }

    /// Sets the number of node-step shards (clamped to at least 1; 1
    /// means the fully sequential reference loop).
    ///
    /// Any value above 1 selects the **ownership-partitioned engine**
    /// (see `run_loop_partitioned`): nodes are split into contiguous
    /// index-range shards whose CMem/inbox state is owned outright by one
    /// [`StepPool`] worker each, stepped lock-free within a cycle
    /// (compute phase), with outgoing packets buffered into per-shard
    /// queues that a deterministic merge drains in shard order — equal to
    /// node-index order, i.e. exactly the sequential injection schedule —
    /// between cycles (exchange phase). Results are therefore bit-exact
    /// against the sequential loop by construction (regression- and
    /// proptest-enforced by `parallel_matches_sequential_matrix` and
    /// `prop_parallel_matches_sequential`). On a host without spare
    /// cores, or when a CMem fault plan makes mid-phase errors possible,
    /// the coordinator steps the shards itself in the same order — the
    /// merge schedule, and so the result, is identical either way.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// Selects the simulation engine (default: [`Engine::EventDriven`]).
    ///
    /// [`Engine::CycleAccurate`] is the original per-cycle loop, kept as
    /// the oracle: both engines produce bit-identical results.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected simulation engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Arms a single-bit fault: the sign bit-plane of `pixel`'s vector at
    /// `layer` is corrupted in flight. Used to demonstrate that the
    /// golden-model comparison detects transport errors.
    pub fn inject_row_fault(&mut self, layer: usize, pixel: usize) {
        self.fault = Some((layer, pixel));
    }

    /// Attaches a CMem fault plan to every computing core. Each core's
    /// copy gets a distinct RNG stream derived from the plan's seed, so
    /// cores fault independently but the whole run stays deterministic. A
    /// quiet plan leaves behaviour bit-identical.
    pub fn attach_cmem_fault_plan(&mut self, plan: &FaultPlan) {
        self.cmem_plan = Some(plan.clone());
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if let Role::Cc { cmem, .. } = &mut node.role {
                let mut p = plan.clone();
                p.seed = plan
                    .seed
                    .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                cmem.attach_fault_plan(p);
            }
        }
    }

    /// Attaches a CMem fault plan to the `cc_index`-th computing core
    /// only (in placement order) — modelling a single defective *tile*
    /// rather than a fabric-wide condition. The plan is pinned to the
    /// tile the core currently occupies: if recovery later rebuilds the
    /// fabric around that tile, the defect is retired with it.
    ///
    /// # Panics
    ///
    /// Panics if `cc_index` is not a valid computing-core index.
    pub fn attach_cmem_fault_plan_to(&mut self, cc_index: usize, plan: &FaultPlan) {
        let mut seen = 0;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if let Role::Cc { cmem, .. } = &mut node.role {
                if seen == cc_index {
                    let mut p = plan.clone();
                    p.seed = plan
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    cmem.attach_fault_plan(p);
                    self.targeted_plans.push((node.coord, plan.clone()));
                    return;
                }
                seen += 1;
            }
        }
        panic!("cc_index {cc_index} out of range ({seen} computing cores)");
    }

    /// Attaches a NoC fault plan to the underlying mesh.
    pub fn attach_noc_fault_plan(&mut self, plan: NocFaultPlan) {
        self.noc_plan = Some(plan.clone());
        self.mesh.attach_fault_plan(plan);
    }

    /// Sets the ECC protection level of every computing core's CMem (see
    /// [`EccMode`]). [`EccMode::Off`] (the default) is bit-identical to
    /// the unprotected fabric.
    pub fn set_ecc_mode(&mut self, mode: EccMode) {
        self.ecc_mode = mode;
        for node in &mut self.nodes {
            if let Role::Cc { cmem, .. } = &mut node.role {
                cmem.set_ecc_mode(mode);
            }
        }
    }

    /// Merged ECC statistics across all computing cores.
    #[must_use]
    pub fn ecc_stats(&self) -> EccStats {
        let mut total = EccStats::default();
        for node in &self.nodes {
            if let Role::Cc { cmem, .. } = &node.role {
                total.merge(&cmem.ecc_stats());
            }
        }
        total
    }

    /// Enables (or disables, with `None`) CRC-checked ACK/NACK
    /// retransmission on the mesh (see [`RetryPolicy`]).
    pub fn set_noc_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.mesh.set_retry_policy(policy);
    }

    /// Arms (or disarms, with `None`) checkpoint/replay recovery.
    pub fn set_recovery_policy(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
    }

    /// Recovery activity of the last [`StreamSim::run`] (all zeros when
    /// no [`RecoveryPolicy`] is attached).
    #[must_use]
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Cycles at which the last [`StreamSim::run`] took sink-progress
    /// checkpoints, ascending (empty with no [`RecoveryPolicy`]). The
    /// trigger counts *logical* progress at the sink, so the log is
    /// bit-identical across [`Engine`]s and thread counts — a serving
    /// layer preempting a run mid-flight uses it to find the latest
    /// architectural state the victim can resume from instead of
    /// restarting.
    #[must_use]
    pub fn checkpoint_log(&self) -> &[u64] {
        &self.ckpt_log
    }

    /// Every tile this simulation currently steers around: the initial
    /// avoid set passed to [`StreamSim::new_avoiding`] plus any tile
    /// remap recovery has since retired. Serving layers diff this
    /// against the set they supplied to learn which tiles went bad
    /// during a run.
    #[must_use]
    pub fn retired_tiles(&self) -> &[Tile] {
        &self.avoid
    }

    /// Merged CMem fault statistics across all computing cores.
    #[must_use]
    pub fn cmem_fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for node in &self.nodes {
            if let Role::Cc { cmem, .. } = &node.role {
                total.merge(&cmem.fault_stats());
            }
        }
        total
    }

    /// NoC fault statistics (zero when no plan is attached).
    #[must_use]
    pub fn noc_fault_stats(&self) -> NocFaultStats {
        self.mesh.fault_stats()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if the workload does not drain within
    /// `budget` cycles, or [`SimError::Degraded`] if injected NoC faults
    /// lost traffic the workload cannot complete without — the degraded
    /// alternative to burning the whole budget on a hang. Typed component
    /// errors (e.g. a dead CMem slice detected as [`SimError::Fault`])
    /// propagate from the computing cores.
    ///
    /// With a [`RecoveryPolicy`] attached, detected faults roll the
    /// simulation back to the latest checkpoint (or rebuild it on a
    /// remapped placement for hard faults) and re-execute; the errors
    /// above then only surface once `max_replays` is exhausted.
    /// [`StreamResult::cycles`] and [`StreamResult::cmem_pj`] include the
    /// re-executed work.
    pub fn run(&mut self, budget: u64) -> Result<StreamResult, SimError> {
        let dims = self.layer_dims();
        self.ckpt_log.clear();
        // the pool workers borrow the config for the whole run, so hand
        // them a run-local copy (one clone per run, microseconds)
        let cfg = self.cfg.clone();
        if self.recovery.is_some() && self.checkpoint.is_none() {
            self.take_checkpoint();
        }
        // Shard geometry is fixed for the whole run (the node count is a
        // function of the layer shapes, so remap rebuilds preserve it):
        // hoisted here instead of being re-derived every cycle.
        let shards = self.parallelism.min(self.nodes.len()).max(1);
        let chunk = self.nodes.len().div_ceil(shards);
        // Dispatching shards to real threads only pays when the host has
        // spare cores to run them on; and with a CMem fault plan armed a
        // shard step can fail mid-phase, where the sequential abort point
        // (nodes after the failing one do not step that cycle) must be
        // reproduced exactly — both cases fall back to the coordinator
        // stepping the shards inline in shard order, which is the same
        // merge schedule.
        let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let use_pool = shards > 1
            && host > 1
            && self.cmem_plan.is_none()
            && self.targeted_plans.is_empty();
        loop {
            let res = if self.parallelism > 1 {
                if use_pool {
                    let dims_ref: &[LayerDims] = &dims;
                    let cfg_ref: &StreamConfig = &cfg;
                    std::thread::scope(|scope| {
                        let mut pool = StepPool::start(scope, shards, dims_ref, cfg_ref);
                        self.run_loop_partitioned(
                            budget,
                            dims_ref,
                            cfg_ref,
                            chunk,
                            Some(&mut pool),
                        )
                    })
                } else {
                    self.run_loop_partitioned(budget, &dims, &cfg, chunk, None)
                }
            } else {
                self.run_loop(budget, &dims, &cfg)
            };
            match res {
                Ok(()) => break,
                Err(e) => {
                    if !self.try_recover(&e) {
                        return Err(e);
                    }
                }
            }
        }
        let cycles = self.mesh.cycle() + self.recovery_stats.replayed_cycles;
        let last = self.cfg.layers.last().expect("non-empty");
        let out_c = last.shape.out_channels;
        let (oh, ow) = {
            let d = self.layer_dims();
            let (_, o) = d[d.len() - 1];
            (o.1, o.2)
        };
        let mut ofmap = vec![0i8; out_c * oh * ow];
        let mut cmem_pj = self.recovery_stats.replayed_pj;
        for n in &self.nodes {
            match &n.role {
                Role::Sink { values, .. } => {
                    for (&idx, &v) in values {
                        ofmap[idx] = v;
                    }
                }
                Role::Cc { cmem, .. } => cmem_pj += cmem.energy().total_pj(),
                Role::Dc { .. } => {}
            }
        }
        Ok(StreamResult {
            ofmap,
            cycles,
            noc: *self.mesh.stats(),
            cmem_pj,
        })
    }

    /// Live CMem energy across all computing cores, pJ.
    fn live_cmem_pj(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| match &n.role {
                Role::Cc { cmem, .. } => cmem.energy().total_pj(),
                _ => 0.0,
            })
            .sum()
    }

    /// Ofmap values the sink has received so far.
    fn sink_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.role {
                Role::Sink { values, .. } => values.len(),
                _ => 0,
            })
            .sum()
    }

    /// Snapshots the full architectural state (nodes, mesh, pending
    /// one-shot fault) for a later rollback.
    fn take_checkpoint(&mut self) {
        self.recovery_stats.checkpoints += 1;
        self.ckpt_log.push(self.mesh.cycle());
        self.checkpoint = Some(Box::new(Checkpoint {
            nodes: self.nodes.clone(),
            mesh: self.mesh.clone(),
            fault: self.fault,
            mark: self.checkpoint_mark,
            lost: self.mesh.fault_stats().packets_lost,
        }));
    }

    /// Dispatches a detected fault to the matching recovery action.
    /// Returns `false` when recovery is off, exhausted, or impossible —
    /// the caller then propagates the error unchanged.
    fn try_recover(&mut self, err: &SimError) -> bool {
        let Some(policy) = self.recovery else {
            return false;
        };
        if self.recovery_stats.replays >= policy.max_replays {
            return false;
        }
        match err {
            // a dead slice is permanent: replaying onto the same tile
            // can only fail again, so retire the tile and rebuild
            SimError::Fault {
                source: ComponentError::Sram(SramError::SliceFailed { .. }),
            } => policy.remap && self.rebuild_remapped(),
            // everything else detected is transient (an uncorrectable
            // ECC word, lost NoC traffic, a wedged router): roll back
            // and re-execute on fresh fault-RNG streams
            SimError::Fault { .. } | SimError::Degraded { .. } => self.rollback(),
            _ => false,
        }
    }

    /// Rolls the simulation back to the latest checkpoint, charging the
    /// discarded cycles/energy, and reseeds every fault RNG so the replay
    /// draws a fresh transient schedule.
    fn rollback(&mut self) -> bool {
        let Some(ck) = self.checkpoint.as_deref() else {
            return false;
        };
        let wasted_cycles = self.mesh.cycle().saturating_sub(ck.mesh.cycle());
        let ck_cycle = ck.mesh.cycle();
        let pj_before = self.live_cmem_pj();
        self.ckpt_log.retain(|&c| c <= ck_cycle);
        self.nodes = ck.nodes.clone();
        self.mesh = ck.mesh.clone();
        self.fault = ck.fault;
        self.checkpoint_mark = ck.mark;
        self.recovery_stats.replays += 1;
        self.recovery_stats.replayed_cycles += wasted_cycles;
        self.recovery_stats.replayed_pj += (pj_before - self.live_cmem_pj()).max(0.0);
        self.reseed_fault_rngs(u64::from(self.recovery_stats.replays));
        true
    }

    /// Rebuilds the whole fabric with the faulty tile added to the avoid
    /// list, restores the attached fault/ECC/retry configuration on the
    /// new placement, and restarts from a fresh initial checkpoint.
    fn rebuild_remapped(&mut self) -> bool {
        let Some(c) = self.fault_coord.take() else {
            return false;
        };
        let wasted_cycles = self.mesh.cycle();
        let wasted_pj = self.live_cmem_pj();
        self.avoid.push(Tile { x: c.x, y: c.y });
        let Ok(fresh) = Self::new_avoiding(&self.cfg, &self.avoid) else {
            return false; // too few healthy tiles left: not recoverable
        };
        let retry = self.mesh.retry_policy();
        self.nodes = fresh.nodes;
        self.mesh = fresh.mesh;
        self.tile_of = fresh.tile_of;
        self.recovery_stats.replays += 1;
        self.recovery_stats.remaps += 1;
        self.recovery_stats.replayed_cycles += wasted_cycles;
        self.recovery_stats.replayed_pj += wasted_pj;
        // restore the fabric configuration on the rebuilt placement
        if let Some(plan) = self.cmem_plan.clone() {
            self.attach_cmem_fault_plan(&plan);
        }
        let targeted = std::mem::take(&mut self.targeted_plans);
        for (coord, plan) in targeted {
            if self.avoid.iter().any(|t| t.x == coord.x && t.y == coord.y) {
                continue; // the defective tile is out of the fabric now
            }
            // the defect stays with its tile: re-pin the plan to whatever
            // computing core occupies it after the remap, if any
            if let Some(&idx) = self.tile_of.get(&(coord.x, coord.y)) {
                if let Role::Cc { cmem, .. } = &mut self.nodes[idx].role {
                    let mut p = plan.clone();
                    p.seed = plan
                        .seed
                        .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    cmem.attach_fault_plan(p);
                }
            }
            self.targeted_plans.push((coord, plan));
        }
        if self.ecc_mode.is_on() {
            let mode = self.ecc_mode;
            self.set_ecc_mode(mode);
        }
        if let Some(plan) = self.noc_plan.clone() {
            self.mesh.attach_fault_plan(plan);
        }
        self.mesh.set_retry_policy(retry);
        self.reseed_fault_rngs(u64::from(self.recovery_stats.replays));
        self.checkpoint_mark = 0;
        self.checkpoint = None;
        self.ckpt_log.clear();
        self.take_checkpoint();
        true
    }

    /// Reseeds every fault RNG (mesh + all CMems) with the given salt;
    /// per-node seed offsets keep the streams distinct.
    fn reseed_fault_rngs(&mut self, salt: u64) {
        self.mesh.reseed_fault_rng(salt);
        for node in &mut self.nodes {
            if let Role::Cc { cmem, .. } = &mut node.role {
                cmem.reseed_fault_rng(salt);
            }
        }
    }

    /// Reports a budget exhaustion with the most actionable error: lost
    /// traffic degrades, a long-wedged router is named for remap
    /// recovery, anything else is a bare timeout.
    fn budget_exhausted(&self, budget: u64, now: u64) -> SimError {
        let lost = self.mesh.fault_stats().packets_lost;
        if lost > 0 {
            return SimError::Degraded {
                lost_packets: lost,
                cycles: now,
            };
        }
        // a router wedged for thousands of cycles is more actionable
        // than a bare timeout: name it, so campaign reports (and remap
        // recovery) can localize the failure
        if !self.mesh.is_idle() {
            if let w @ NocError::Wedged { stalled_for, .. } = self.mesh.wedge_report() {
                if stalled_for >= WEDGE_STALL_AGE {
                    return SimError::Fault {
                        source: ComponentError::Noc(w),
                    };
                }
            }
        }
        SimError::Timeout { budget }
    }

    /// Routes one delivered packet into its destination node's inbox,
    /// applying the armed in-flight row fault if this is its packet.
    fn deliver(&mut self, d: Delivered<Msg>) -> Result<(), SimError> {
        let key = (d.packet.dst.x, d.packet.dst.y);
        let idx = *self.tile_of.get(&key).ok_or_else(|| SimError::Protocol {
            reason: format!("delivery to unknown tile {}", d.packet.dst),
        })?;
        let mut payload = d.packet.payload;
        if let (Some((fl, fp)), Msg::Row { layer, pixel, row, lanes }) =
            (self.fault, &mut payload)
        {
            if *layer == fl && *pixel == fp && *row == 7 {
                // single-event upset on bit-line 0 of the sign plane:
                // channel 0's value shifts by ±128
                lanes[0] ^= 1;
                self.fault = None;
            }
        }
        self.nodes[idx].inbox.push_back(payload);
        Ok(())
    }

    /// The sequential simulation loop (`parallelism == 1`), kept as the
    /// naive reference the partitioned engine is verified against: full
    /// active-set mesh scans, every free node stepped every cycle, every
    /// MAC executed on the bit-plane arrays. Returns when the workload
    /// has drained (`Ok`) or with the same typed errors as
    /// [`StreamSim::run`].
    fn run_loop(
        &mut self,
        budget: u64,
        dims: &[LayerDims],
        cfg: &StreamConfig,
    ) -> Result<(), SimError> {
        // the full-scan tick neither needs nor maintains the partitioned
        // engine's active-router tracking (a rollback may have restored a
        // mesh that carried it)
        self.mesh.disable_partitioned_stepping();
        // reused across cycles so steady-state iterations never allocate
        let mut outgoing: Vec<Packet<Msg>> = Vec::new();
        loop {
            let now = self.mesh.cycle();
            if now >= budget {
                return Err(self.budget_exhausted(budget, now));
            }
            // deliver mesh traffic
            for d in self.mesh.tick() {
                self.deliver(d)?;
            }
            // let every free node take one step
            let now = self.mesh.cycle();
            let failed: Option<(Coord, SimError)> = {
                let mut first = None;
                for node in &mut self.nodes {
                    if node.busy_until > now {
                        continue;
                    }
                    let coord = node.coord;
                    if let Err(e) = step_node(node, now, dims, cfg, &mut outgoing, false) {
                        first = Some((coord, e));
                        break;
                    }
                }
                first
            };
            if let Some((coord, e)) = failed {
                self.fault_coord = Some(coord);
                return Err(e);
            }
            let injected = !outgoing.is_empty();
            for p in outgoing.drain(..) {
                self.mesh.send(p);
            }
            // recovery: snapshot architectural state whenever enough new
            // ofmap values have reached the sink — a logical-progress
            // trigger, so both engines checkpoint at identical points.
            // A snapshot is skipped while the mesh has unrecoverably
            // lost packets beyond the held checkpoint's count: rollbacks
            // must land *before* the loss.
            if let Some(policy) = self.recovery {
                let mark = self.sink_count() / policy.checkpoint_values.max(1);
                if mark > self.checkpoint_mark
                    && self.mesh.fault_stats().packets_lost
                        == self.checkpoint.as_ref().map_or(0, |c| c.lost)
                {
                    self.checkpoint_mark = mark;
                    self.take_checkpoint();
                }
            }
            // completion check
            if self.finished() && self.mesh.is_idle() {
                return Ok(());
            }
            // quiescence: nothing in flight, nothing queued, nobody busy —
            // no future event can occur, so don't burn the rest of the
            // budget
            if !injected
                && self.mesh.is_idle()
                && self
                    .nodes
                    .iter()
                    .all(|n| n.inbox.is_empty() && n.busy_until <= now)
            {
                let lost = self.mesh.fault_stats().packets_lost;
                if lost > 0 {
                    return Err(SimError::Degraded {
                        lost_packets: lost,
                        cycles: self.mesh.cycle(),
                    });
                }
                return Err(SimError::Protocol {
                    reason: "simulation quiesced before completion".into(),
                });
            }
            // skip-ahead: with the mesh drained, ticking through the gap
            // until the next node event is pure no-op work — every free
            // node's step is empty (that is what `next_node_event`
            // certifies), so batch-apply the idle cycles. `wake - 1`
            // because the loop ticks once before stepping, and the budget
            // cap reproduces the cycle-accurate timeout cycle exactly.
            if self.engine == Engine::EventDriven && self.mesh.is_idle() {
                if let Some(wake) = self.next_node_event(now) {
                    if wake > now + 1 {
                        self.mesh.advance_to((wake - 1).min(budget));
                    }
                }
            }
        }
    }

    /// The ownership-partitioned simulation loop (`parallelism > 1`):
    /// the two-phase (compute / exchange) schedule over shard-owned node
    /// state, bit-identical to [`StreamSim::run_loop`] by construction.
    ///
    /// Per cycle: the mesh ticks over its tracked active-router set (a
    /// maintained superset of routers with queued work — every phase of
    /// the full-scan tick is predicate-guarded, so a superset scan is
    /// byte-identical, proptest-enforced in `maicc-noc`); the node phase
    /// runs only when a delivery landed or the precomputed wake cycle
    /// arrived (`next_node_event` certifies every skipped step a no-op);
    /// shards step lock-free against state they own, buffering packets
    /// per shard; and the exchange merges the shard queues in shard
    /// order — equal to node-index order, the sequential injection
    /// schedule. With `pool` absent (single-core host, or a CMem fault
    /// plan whose mid-phase abort point must match the sequential loop)
    /// the coordinator steps the shards itself in the same order.
    ///
    /// Completion, quiescence, checkpoint, and budget checks reuse values
    /// cached at the last node phase: nodes only change state in a phase
    /// (deliveries force one), so the cached `finished`/`wake` are exact
    /// on phase-skipped cycles and every exit fires on the same cycle as
    /// the sequential loop.
    #[allow(clippy::too_many_lines)]
    fn run_loop_partitioned(
        &mut self,
        budget: u64,
        dims: &[LayerDims],
        cfg: &StreamConfig,
        chunk: usize,
        mut pool: Option<&mut StepPool>,
    ) -> Result<(), SimError> {
        // (re)build the tracked active-router set — exact after a
        // rollback restored an older mesh or a remap rebuilt a fresh one
        self.mesh.enable_partitioned_stepping();
        let mut outgoing: Vec<Packet<Msg>> = Vec::new();
        let mut delivered: Vec<Delivered<Msg>> = Vec::new();
        // phase-cached state; `wake = Some(0)` forces the first phase
        let mut wake: Option<u64> = Some(0);
        let mut finished = self.finished();
        loop {
            let now = self.mesh.cycle();
            if now >= budget {
                return Err(self.budget_exhausted(budget, now));
            }
            delivered.clear();
            self.mesh.tick_partitioned(&mut delivered);
            let now = self.mesh.cycle();
            let mut injected = false;
            if !delivered.is_empty() || wake.is_some_and(|w| w <= now) {
                for d in delivered.drain(..) {
                    self.deliver(d)?;
                }
                // compute phase: shards step the nodes they own. Going
                // wide only pays when at least two shards have work;
                // otherwise the coordinator walks them inline — the same
                // schedule, without the dispatch round-trip.
                let failed: Option<(Coord, SimError)> = match pool.as_deref_mut() {
                    Some(pool)
                        if self
                            .nodes
                            .chunks(chunk)
                            .filter(|s| {
                                s.iter().any(|n| n.busy_until <= now && node_pending(n))
                            })
                            .count()
                            >= 2 =>
                    {
                        let res = pool.step_shards(&mut self.nodes, chunk, now);
                        // exchange phase: merge the per-shard output
                        // queues in shard order
                        injected = pool.scratch.iter().any(|q| !q.is_empty());
                        self.mesh.send_from_shards(&mut pool.scratch);
                        res.err()
                    }
                    _ => {
                        let mut first = None;
                        for node in &mut self.nodes {
                            if node.busy_until > now || !node_pending(node) {
                                continue;
                            }
                            let coord = node.coord;
                            if let Err(e) =
                                step_node(node, now, dims, cfg, &mut outgoing, true)
                            {
                                first = Some((coord, e));
                                break;
                            }
                        }
                        injected = !outgoing.is_empty();
                        for p in outgoing.drain(..) {
                            self.mesh.send(p);
                        }
                        first
                    }
                };
                if let Some((coord, e)) = failed {
                    self.fault_coord = Some(coord);
                    return Err(e);
                }
                finished = self.finished();
                // recovery snapshot on sink progress — identical trigger
                // and cycle as the sequential loop (sink counts only move
                // in a phase, and a lost-packet mismatch can never heal,
                // so evaluating on phase cycles alone is exact)
                if let Some(policy) = self.recovery {
                    let mark = self.sink_count() / policy.checkpoint_values.max(1);
                    if mark > self.checkpoint_mark
                        && self.mesh.fault_stats().packets_lost
                            == self.checkpoint.as_ref().map_or(0, |c| c.lost)
                    {
                        self.checkpoint_mark = mark;
                        self.take_checkpoint();
                    }
                }
                wake = self.next_node_event(now);
            }
            let idle = self.mesh.is_idle();
            if finished && idle {
                return Ok(());
            }
            // quiescence: `wake == None` certifies no node is busy or
            // pending (so all inboxes are empty), unchanged since the
            // last phase
            if !injected && idle && wake.is_none() {
                let lost = self.mesh.fault_stats().packets_lost;
                if lost > 0 {
                    return Err(SimError::Degraded {
                        lost_packets: lost,
                        cycles: self.mesh.cycle(),
                    });
                }
                return Err(SimError::Protocol {
                    reason: "simulation quiesced before completion".into(),
                });
            }
            if self.engine == Engine::EventDriven && idle {
                if let Some(w) = wake {
                    if w > now + 1 {
                        self.mesh.advance_to((w - 1).min(budget));
                    }
                }
            }
        }
    }

    /// The next cycle at which any node can act, given a drained mesh:
    /// the earliest `busy_until` expiry among nodes with pending work
    /// (a queued inbox message, or a DC with a staged pixel and credit
    /// window headroom) — or, when no node has pending work, the latest
    /// `busy_until`, which is when the run provably quiesces. `None`
    /// means quiescence has already been reached (the caller errors out
    /// before asking).
    fn next_node_event(&self, now: u64) -> Option<u64> {
        let mut earliest_pending: Option<u64> = None;
        let mut latest_busy: Option<u64> = None;
        for n in &self.nodes {
            if n.busy_until > now {
                latest_busy = Some(latest_busy.map_or(n.busy_until, |m| m.max(n.busy_until)));
            }
            if node_pending(n) {
                // a free node with pending work acts on the very next
                // cycle (it steps once per cycle, e.g. one inbox message)
                let at = n.busy_until.max(now + 1);
                earliest_pending = Some(earliest_pending.map_or(at, |m| m.min(at)));
            }
        }
        earliest_pending.or(latest_busy)
    }

    fn layer_dims(&self) -> Vec<LayerDims> {
        let mut out = Vec::new();
        let mut cur = (
            self.cfg.input.shape()[0],
            self.cfg.input.shape()[1],
            self.cfg.input.shape()[2],
        );
        for l in &self.cfg.layers {
            let s = &l.shape;
            let o = (
                s.out_channels,
                (cur.1 - s.kernel_h) / s.stride + 1,
                (cur.2 - s.kernel_w) / s.stride + 1,
            );
            out.push((cur, o));
            cur = o;
        }
        out
    }

    fn finished(&self) -> bool {
        self.nodes.iter().all(|n| match &n.role {
            Role::Sink { values, expected } => values.len() == *expected,
            Role::Dc {
                next_pixel,
                total_pixels,
                ..
            } => next_pixel >= total_pixels,
            Role::Cc { arriving, .. } => arriving.is_empty(),
        })
    }
}

/// Steps one node at cycle `now`, appending emitted packets to `out`.
///
/// `fast` selects the partitioned engine's host-side MAC shortcut: when
/// [`Cmem::mac_shortcut_ok`] certifies every slice a pixel's MACs touch
/// (no fault plan, no ECC, mask fully open), the dot products are
/// computed from the byte-form shadows instead of the bit-plane arrays —
/// the identical value by the signed bit-plane MAC theorem
/// (`prop_mac_signed_matches_reference` in `maicc-sram`), with identical
/// energy accounting via [`Cmem::charge_macs`]. The sequential reference
/// loop passes `false` and always runs the arrays.
#[allow(clippy::too_many_lines)]
fn step_node(
    node: &mut SimNode,
    now: u64,
    dims: &[LayerDims],
    cfg: &StreamConfig,
    out: &mut Vec<Packet<Msg>>,
    fast: bool,
) -> Result<(), SimError> {
    let coord = node.coord;
    match &mut node.role {
        Role::Dc {
            layer,
            staged,
            partial,
            next_pixel,
            total_pixels,
            in_flight,
            first_cc,
        } => {
            // absorb arriving ofmap values from the previous layer
            while let Some(msg) = node.inbox.pop_front() {
                match msg {
                    Msg::Value { idx, value, .. } => {
                        let (in_dim, _) = dims[*layer];
                        let per_pixel = in_dim.0;
                        let pixels = in_dim.1 * in_dim.2;
                        // idx is [C, H, W]-flat of this layer's ifmap
                        let pixel = idx % pixels;
                        let channel = idx / pixels;
                        let e = partial
                            .entry(pixel)
                            .or_insert_with(|| (vec![0i8; per_pixel], 0));
                        e.0[channel] = value;
                        e.1 += 1;
                        if e.1 == per_pixel {
                            let (v, _) = partial.remove(&pixel).expect("just inserted");
                            staged.insert(pixel, v);
                        }
                    }
                    Msg::Credit { .. } => {
                        *in_flight = in_flight.saturating_sub(1);
                    }
                    Msg::Row { .. } => {
                        return Err(SimError::Protocol {
                            reason: "row delivered to a DC".into(),
                        })
                    }
                }
            }
            // inject the next pixel if the window allows
            if *next_pixel < *total_pixels && *in_flight < CREDIT_WINDOW {
                if let Some(v) = staged.remove(next_pixel) {
                    // one transposed 256-wide sub-vector per channel group
                    let groups = v.len().div_ceil(256);
                    for q in 0..groups {
                        let words: Vec<u16> = (0..256)
                            .map(|c| {
                                v.get(q * 256 + c).map_or(0, |&b| b as u8 as u16)
                            })
                            .collect();
                        let planes = transpose::pack_words(&words, 8, 256);
                        for (r, lanes) in planes.into_iter().enumerate() {
                            out.push(Packet::new(
                                coord,
                                *first_cc,
                                ROW_PACKET_FLITS,
                                Msg::Row {
                                    layer: *layer,
                                    pixel: *next_pixel,
                                    row: (q * 8 + r) as u8,
                                    lanes,
                                },
                            ));
                        }
                    }
                    node.busy_until = now
                        + v.len() as u64 * TRANSPOSE_PER_BYTE
                        + groups as u64 * 8 * ROW_SEND;
                    *next_pixel += 1;
                    *in_flight += 1;
                }
            }
        }
        Role::Cc {
            layer,
            cmem,
            residents,
            shadow_w,
            arriving,
            psums,
            next_hop,
            value_target,
            is_first,
            dc,
        } => {
            let Some(msg) = node.inbox.pop_front() else {
                return Ok(());
            };
            let Msg::Row { pixel, row, lanes, .. } = msg else {
                return Err(SimError::Protocol {
                    reason: "cc received a non-row message".into(),
                });
            };
            let (in_dim, out_dim) = dims[*layer];
            let l = &cfg.layers[*layer];
            let groups = in_dim.0.div_ceil(256);
            let slot = arriving
                .entry(pixel)
                .or_insert_with(|| vec![None; groups * 8]);
            slot[row as usize] = Some(lanes);
            if !slot.iter().all(Option::is_some) {
                return Ok(());
            }
            let rows: Vec<Vec<u64>> = arriving
                .remove(&pixel)
                .expect("checked complete")
                .into_iter()
                .map(|r| r.expect("all rows present"))
                .collect();
            let (y, x) = (pixel / in_dim.2, pixel % in_dim.2);
            // ingest all sub-vectors into slice 0 (group q at rows 8q..8q+8)
            for (r, lanes) in rows.iter().enumerate() {
                cmem.write_row_remote(0, r, lanes)?;
            }
            // per group: broadcast its sub-vector, MAC its residents,
            // partial sums accumulating across groups in data memory
            let stride = l.shape.stride;
            let mut macs = 0u64;
            let mut completed: Vec<(usize, usize)> = Vec::new();
            // ascending slice order: the broadcast below stops at the
            // first failed move, so its iteration order is observable
            // (energy accounting, abort point) and must be deterministic
            let used: Vec<usize> = {
                let mut v: Vec<usize> = residents.iter().map(|r| r.slice).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            // Host-side MAC shortcut (partitioned engine only): legal
            // when every touched slice's MAC is a pure function of its
            // operands. The ingest and broadcast below still run on the
            // real arrays either way.
            let shadow = fast && used.iter().all(|&s| cmem.mac_shortcut_ok(s));
            // the arriving pixel, untransposed back to bytes per group
            // (only the live channel span — the rest is zero in both
            // operands and contributes nothing to the dot)
            let shadow_a: Vec<Vec<i8>> = if shadow {
                (0..groups)
                    .map(|q| {
                        let span = (in_dim.0 - q * 256).min(256);
                        let planes = &rows[q * 8..q * 8 + 8];
                        (0..span)
                            .map(|c| {
                                let (w, b) = (c / 64, c % 64);
                                let mut byte = 0u8;
                                for (r, lanes) in planes.iter().enumerate() {
                                    byte |= (((lanes[w] >> b) & 1) as u8) << r;
                                }
                                byte as i8
                            })
                            .collect()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut group_order: Vec<(usize, &Resident)> =
                residents.iter().enumerate().collect();
            group_order.sort_by_key(|(_, r)| r.group);
            let mut current_group = usize::MAX;
            for (ri, r) in group_order {
                if r.group != current_group {
                    current_group = r.group;
                    for &s in &used {
                        cmem.move_vector(0, r.group * 8, s, 0, 8)?;
                    }
                }
                let dot = if shadow {
                    let full: i64 = shadow_a[r.group]
                        .iter()
                        .zip(&shadow_w[ri])
                        .map(|(&a, &w)| i64::from(a) * i64::from(w))
                        .sum();
                    debug_assert_eq!(
                        full,
                        cmem.slice(r.slice)
                            .and_then(|s| s.mac_fast(0, r.row, 8, true))
                            .expect("shortcut-certified MAC"),
                        "shadow dot diverged from the bit-plane MAC"
                    );
                    full as i32
                } else {
                    cmem.mac_i8(r.slice, 0, r.row)? as i32
                };
                macs += 1;
                let (wy, wx) = (y as isize - r.ky as isize, x as isize - r.kx as isize);
                if wy >= 0
                    && wx >= 0
                    && (wy as usize).is_multiple_of(stride)
                    && (wx as usize).is_multiple_of(stride)
                {
                    let (oy, ox) = (wy as usize / stride, wx as usize / stride);
                    if oy < out_dim.1 && ox < out_dim.2 {
                        let o = (r.local_filter * out_dim.1 + oy) * out_dim.2 + ox;
                        psums[o] += dot;
                    }
                }
            }
            if shadow {
                // identical energy accounting to `macs` array MAC.C ops
                cmem.charge_macs(macs);
            }
            // windows whose bottom-right corner this pixel was are done
            if y + 1 >= l.shape.kernel_h
                && x + 1 >= l.shape.kernel_w
                && (y + 1 - l.shape.kernel_h).is_multiple_of(stride)
                && (x + 1 - l.shape.kernel_w).is_multiple_of(stride)
            {
                let (oy, ox) = (
                    (y + 1 - l.shape.kernel_h) / stride,
                    (x + 1 - l.shape.kernel_w) / stride,
                );
                if oy < out_dim.1 && ox < out_dim.2 {
                    for r in residents.iter() {
                        if (r.ky, r.kx, r.group) == (0, 0, 0) {
                            completed.push((r.local_filter, r.global_filter));
                        }
                    }
                    for (local, global) in completed.iter() {
                        let o = (local * out_dim.1 + oy) * out_dim.2 + ox;
                        let mut acc = psums[o];
                        if l.relu {
                            acc = acc.max(0);
                        }
                        let q = l.requant.apply(acc);
                        // [C, H, W]-flat index in the next layer's ifmap
                        let idx = (global * out_dim.1 + oy) * out_dim.2 + ox;
                        out.push(Packet::new(
                            coord,
                            *value_target,
                            WORD_PACKET_FLITS,
                            Msg::Value {
                                layer: *layer,
                                idx,
                                value: q,
                            },
                        ));
                    }
                }
            }
            // forward the vector and credit the DC
            if let Some(nh) = next_hop {
                for (r, lanes) in rows.iter().enumerate() {
                    out.push(Packet::new(
                        coord,
                        *nh,
                        ROW_PACKET_FLITS,
                        Msg::Row {
                            layer: *layer,
                            pixel,
                            row: r as u8,
                            lanes: lanes.clone(),
                        },
                    ));
                }
            }
            if *is_first {
                out.push(Packet::new(coord, *dc, 1, Msg::Credit { layer: *layer }));
            }
            let compute = groups as u64 * 7 * 8 + macs.div_ceil(7) * timing::mac_cycles(8);
            node.busy_until = now
                + compute
                + macs * ACCUM_PER_MAC
                + completed.len() as u64 * AUX_PER_VALUE
                + if next_hop.is_some() {
                    groups as u64 * 8 * ROW_SEND
                } else {
                    0
                };
        }
        Role::Sink { values, .. } => {
            while let Some(msg) = node.inbox.pop_front() {
                if let Msg::Value { idx, value, .. } = msg {
                    values.insert(idx, value);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_layer_matches_golden() {
        let cfg = StreamConfig::small_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
        assert!(r.cycles > 0);
        assert!(r.cmem_pj > 0.0);
        assert!(r.noc.packets_delivered > 0);
    }

    #[test]
    fn warm_start_matches_cold_bit_for_bit() {
        let cfg = StreamConfig::small_test();
        let mut cold = StreamSim::new(&cfg).unwrap();
        let rc = cold.run(5_000_000).unwrap();
        let image = StreamSim::weight_image(&cfg);
        let mut warm = StreamSim::new_avoiding_warm(&cfg, &[], &image).unwrap();
        let rw = warm.run(5_000_000).unwrap();
        assert_eq!(rw, rc);
    }

    #[test]
    fn warm_start_rejects_mismatched_image() {
        let cfg = StreamConfig::small_test();
        let mut image = StreamSim::weight_image(&cfg);
        image[0][0] = image[0][0].wrapping_add(1);
        let err = StreamSim::new_avoiding_warm(&cfg, &[], &image).unwrap_err();
        assert!(matches!(err, SimError::DoesNotFit { .. }), "{err:?}");
        // an image truncated to the wrong length is rejected too
        let short = StreamSim::weight_image(&cfg)[1..].to_vec();
        assert!(StreamSim::new_avoiding_warm(&cfg, &[], &short).is_err());
    }

    #[test]
    fn weight_image_matches_what_construction_writes() {
        // the image must enumerate exactly the vectors construction
        // streams into CMem, in order: count them, and check each vector's
        // live prefix against the core's shadow copy of the written bytes
        for cfg in [StreamConfig::small_test(), StreamConfig::two_layer_test()] {
            let sim = StreamSim::new(&cfg).unwrap();
            let image = StreamSim::weight_image(&cfg);
            let mut it = image.iter();
            let mut written = 0usize;
            for n in &sim.nodes {
                if let Role::Cc { shadow_w, .. } = &n.role {
                    for shadow in shadow_w {
                        let vec = it.next().expect("image shorter than writes");
                        assert_eq!(&vec[..shadow.len()], &shadow[..]);
                        assert!(vec[shadow.len()..].iter().all(|&b| b == 0));
                        written += 1;
                    }
                }
            }
            assert_eq!(image.len(), written);
        }
    }

    #[test]
    fn two_layer_pipeline_matches_golden() {
        let cfg = StreamConfig::two_layer_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(10_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn multi_core_chain_matches_golden() {
        // 12 filters → 3 computing cores at 5 filters max each (3×3)
        let cfg = StreamConfig {
            layers: vec![test_layer(16, 12, 2)],
            input: test_input(16, 6, 6),
        };
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
        // forwarding between three cores tripled the row traffic
        assert!(r.noc.flit_hops > 0);
    }

    #[test]
    fn three_layer_chain_matches_golden() {
        let cfg = StreamConfig {
            layers: vec![
                test_layer(16, 8, 0),
                test_layer(8, 8, 1),
                test_layer(8, 2, 2),
            ],
            input: test_input(16, 10, 10),
        };
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(20_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn wide_channel_layer_splits_into_groups() {
        // 320 input channels → two 256-wide groups per filter, partial
        // sums combined in the core (the conv4-class shape)
        let cfg = StreamConfig {
            layers: vec![test_layer(320, 2, 6)],
            input: test_input(320, 5, 5),
        };
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(20_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn wide_channel_pipeline_matches_golden() {
        let cfg = StreamConfig {
            layers: vec![test_layer(300, 8, 7), test_layer(8, 3, 8)],
            input: test_input(300, 6, 6),
        };
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(40_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn parallel_matches_sequential_matrix() {
        // the PR-2 regression grown into the partitioned-engine matrix:
        // threads {1, 2, 4, 8} × both engines × {clean, CMem transient
        // plan + replay, NoC drop plan + replay, dead tile + remap}.
        // Ownership-partitioned stepping must reproduce the sequential
        // run byte-for-byte: StreamResult, recovery stats, fault and ECC
        // observations, and the retired-tile set.
        #[derive(Clone, Copy, Debug)]
        enum Scenario {
            Clean,
            CmemPlan,
            NocPlan,
            Retire,
        }
        let build = |sc: Scenario, engine: Engine, threads: usize| {
            let cfg = match sc {
                Scenario::Clean => StreamConfig::two_layer_test(),
                _ => StreamConfig::small_test(),
            };
            let mut sim = StreamSim::new(&cfg).unwrap();
            sim.set_engine(engine);
            sim.set_parallelism(threads);
            match sc {
                Scenario::Clean => {}
                Scenario::CmemPlan => {
                    sim.attach_cmem_fault_plan(&FaultPlan::with_seed(8).transient(1e-4));
                    sim.set_ecc_mode(EccMode::DetectOnly);
                    sim.set_recovery_policy(Some(RecoveryPolicy {
                        max_replays: 64,
                        remap: false,
                        checkpoint_values: 8,
                    }));
                }
                Scenario::NocPlan => {
                    sim.attach_noc_fault_plan(
                        NocFaultPlan::with_seed(3)
                            .drop_rate(0.02)
                            .retry_after(64)
                            .max_retries(1),
                    );
                    sim.set_recovery_policy(Some(RecoveryPolicy {
                        max_replays: 32,
                        remap: false,
                        checkpoint_values: 8,
                    }));
                }
                Scenario::Retire => {
                    sim.attach_cmem_fault_plan_to(0, &FaultPlan::none().dead_slice(2));
                    sim.set_recovery_policy(Some(RecoveryPolicy::default()));
                }
            }
            (cfg, sim)
        };
        for sc in [
            Scenario::Clean,
            Scenario::CmemPlan,
            Scenario::NocPlan,
            Scenario::Retire,
        ] {
            for engine in [Engine::EventDriven, Engine::CycleAccurate] {
                let (cfg, mut base) = build(sc, engine, 1);
                let seq = base.run(20_000_000).unwrap();
                assert_eq!(seq.ofmap, cfg.golden(), "{sc:?} baseline converges");
                for threads in [2, 4, 8] {
                    let (_, mut sim) = build(sc, engine, threads);
                    let par = sim.run(20_000_000).unwrap();
                    let tag = format!("{sc:?}/{engine:?}/{threads} threads");
                    assert_eq!(par, seq, "StreamResult diverged: {tag}");
                    assert_eq!(
                        sim.recovery_stats(),
                        base.recovery_stats(),
                        "recovery stats diverged: {tag}"
                    );
                    assert_eq!(
                        sim.cmem_fault_stats(),
                        base.cmem_fault_stats(),
                        "CMem fault stats diverged: {tag}"
                    );
                    assert_eq!(
                        sim.noc_fault_stats(),
                        base.noc_fault_stats(),
                        "NoC fault stats diverged: {tag}"
                    );
                    assert_eq!(sim.ecc_stats(), base.ecc_stats(), "ECC stats diverged: {tag}");
                    assert_eq!(
                        sim.retired_tiles(),
                        base.retired_tiles(),
                        "retired tiles diverged: {tag}"
                    );
                }
            }
        }
    }

    #[test]
    fn engines_agree_on_canned_configs() {
        // the oracle check on every canned workload, including the
        // stride-2 ResNet segment whose modelled latency is pinned below
        for (cfg, budget) in [
            (StreamConfig::small_test(), 5_000_000u64),
            (StreamConfig::two_layer_test(), 10_000_000),
            (StreamConfig::resnet18_segment(), 5_000_000),
        ] {
            let mut fast = StreamSim::new(&cfg).unwrap();
            assert_eq!(fast.engine(), Engine::EventDriven, "default engine");
            let f = fast.run(budget).unwrap();
            let mut oracle = StreamSim::new(&cfg).unwrap();
            oracle.set_engine(Engine::CycleAccurate);
            let o = oracle.run(budget).unwrap();
            assert_eq!(f, o, "engines diverged");
            assert_eq!(f.ofmap, cfg.golden());
        }
    }

    #[test]
    fn resnet18_segment_modelled_cycles_pinned() {
        // the modelled latency is part of the paper reproduction: the
        // engine change must not move it by a single cycle
        let cfg = StreamConfig::resnet18_segment();
        let r = StreamSim::new(&cfg).unwrap().run(5_000_000).unwrap();
        assert_eq!(r.cycles, 87_087);
    }

    #[test]
    fn event_engine_reproduces_timeout_cycle() {
        // a budget that expires mid-gap: the skip-ahead must cap at the
        // budget so the timeout fires at the same cycle as the oracle
        let cfg = StreamConfig::small_test();
        for budget in [10u64, 97, 1_000] {
            let mut fast = StreamSim::new(&cfg).unwrap();
            let mut oracle = StreamSim::new(&cfg).unwrap();
            oracle.set_engine(Engine::CycleAccurate);
            let (f, o) = (fast.run(budget), oracle.run(budget));
            match (f, o) {
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("expected two timeouts, got {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn injected_bit_flip_is_caught_by_golden_check() {
        let cfg = StreamConfig::small_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.inject_row_fault(0, 0);
        let r = sim.run(5_000_000).unwrap();
        // the corrupted bit-plane perturbs at most the windows touching
        // pixel (0,0) — the run completes but the result must differ
        assert_ne!(r.ofmap, cfg.golden(), "fault must be observable");
        // and a clean re-run still matches (the fault is one-shot)
        let mut clean = StreamSim::new(&cfg).unwrap();
        assert_eq!(clean.run(5_000_000).unwrap().ofmap, cfg.golden());
    }

    #[test]
    fn timeout_is_reported() {
        let cfg = StreamConfig::small_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        assert!(matches!(sim.run(10), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn stride_two_matches_golden() {
        let mut cfg = StreamConfig {
            layers: vec![test_layer(16, 4, 3)],
            input: test_input(16, 9, 9),
        };
        cfg.layers[0].shape.stride = 2; // 9 → 4 spatial
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn downsampling_pipeline_matches_golden() {
        // stride-2 layer feeding a stride-1 layer — the ResNet stage shape
        let mut l1 = test_layer(16, 8, 4);
        l1.shape.stride = 2;
        let cfg = StreamConfig {
            layers: vec![l1, test_layer(8, 4, 5)],
            input: test_input(16, 11, 11),
        };
        let mut sim = StreamSim::new(&cfg).unwrap();
        let r = sim.run(20_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
    }

    #[test]
    fn stride_three_rejected() {
        let mut cfg = StreamConfig::small_test();
        cfg.layers[0].shape.stride = 3;
        assert!(matches!(
            StreamSim::new(&cfg),
            Err(SimError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn channel_mismatch_rejected() {
        let cfg = StreamConfig {
            layers: vec![test_layer(16, 4, 0), test_layer(16, 4, 1)],
            input: test_input(16, 6, 6),
        };
        assert!(matches!(
            StreamSim::new(&cfg),
            Err(SimError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn empty_workload_rejected() {
        let cfg = StreamConfig {
            layers: vec![],
            input: test_input(4, 4, 4),
        };
        assert!(matches!(
            StreamSim::new(&cfg),
            Err(SimError::DoesNotFit { .. })
        ));
    }

    #[test]
    fn remapped_placement_avoids_failed_tiles_and_matches_golden() {
        // kill two tiles the default placement would have used: the
        // groups remap around them and the result stays bit-exact
        let cfg = StreamConfig::small_test();
        let failed = [Tile { x: 1, y: 0 }, Tile { x: 3, y: 0 }];
        let mut sim = StreamSim::new_avoiding(&cfg, &failed).unwrap();
        for t in &failed {
            assert!(
                !sim.tile_of.contains_key(&(t.x, t.y)),
                "dead tile ({}, {}) still hosts a node",
                t.x,
                t.y
            );
        }
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
        // the remapped chain is longer than the clean one
        let clean = StreamSim::new(&cfg).unwrap().run(5_000_000).unwrap();
        assert!(
            r.noc.flit_hops >= clean.noc.flit_hops,
            "degraded placement cannot shorten routes: {} vs {}",
            r.noc.flit_hops,
            clean.noc.flit_hops
        );
    }

    #[test]
    fn lost_traffic_degrades_instead_of_hanging() {
        // certain flit loss with retries exhausted: the run must end in a
        // typed Degraded error well before the budget
        let cfg = StreamConfig::small_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.attach_noc_fault_plan(
            NocFaultPlan::with_seed(5)
                .drop_rate(1.0)
                .retry_after(32)
                .max_retries(1),
        );
        let err = sim.run(5_000_000).unwrap_err();
        assert!(
            matches!(err, SimError::Degraded { lost_packets, .. } if lost_packets > 0),
            "{err:?}"
        );
        assert!(sim.noc_fault_stats().packets_lost > 0);
    }

    #[test]
    fn recovery_is_inert_without_faults() {
        // an armed policy on a clean run takes checkpoints but never
        // replays: the result stays bit-, cycle-, and energy-identical
        let cfg = StreamConfig::small_test();
        let clean = StreamSim::new(&cfg).unwrap().run(5_000_000).unwrap();
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.set_recovery_policy(Some(RecoveryPolicy::default()));
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r, clean);
        let rec = sim.recovery_stats();
        assert!(rec.checkpoints > 1, "{rec:?}");
        assert_eq!(rec.replays, 0);
        assert_eq!(rec.replayed_cycles, 0);
        assert_eq!(rec.replayed_pj, 0.0);
    }

    #[test]
    fn replay_recovers_detected_transient_upsets() {
        // DetectOnly ECC turns every transient upset into a typed error;
        // checkpoint/replay re-executes the poisoned segment on a fresh
        // RNG stream until the run converges to the golden output
        let cfg = StreamConfig::small_test();
        let plan = FaultPlan::with_seed(8).transient(1e-4);
        let mut bare = StreamSim::new(&cfg).unwrap();
        bare.attach_cmem_fault_plan(&plan);
        bare.set_ecc_mode(EccMode::DetectOnly);
        assert!(
            matches!(bare.run(5_000_000), Err(SimError::Fault { .. })),
            "without recovery the detected upset must propagate"
        );
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.attach_cmem_fault_plan(&plan);
        sim.set_ecc_mode(EccMode::DetectOnly);
        sim.set_recovery_policy(Some(RecoveryPolicy {
            max_replays: 64,
            remap: false,
            checkpoint_values: 8,
        }));
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden(), "replayed run must converge");
        let rec = sim.recovery_stats();
        assert!(rec.replays > 0, "{rec:?}");
        assert_eq!(rec.remaps, 0);
        assert!(rec.replayed_cycles > 0, "{rec:?}");
        assert!(rec.replayed_pj > 0.0, "{rec:?}");
        // the re-executed work is charged to the final bill
        let clean = StreamSim::new(&cfg).unwrap().run(5_000_000).unwrap();
        assert!(r.cycles > clean.cycles, "{} vs {}", r.cycles, clean.cycles);
        assert!(r.cmem_pj > clean.cmem_pj);
    }

    #[test]
    fn remap_replay_survives_a_dead_tile() {
        // a dead slice pinned to one tile: recovery retires the tile,
        // rebuilds the placement around it, and re-executes to golden
        let cfg = StreamConfig::small_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.attach_cmem_fault_plan_to(0, &FaultPlan::none().dead_slice(2));
        sim.set_recovery_policy(Some(RecoveryPolicy::default()));
        let r = sim.run(20_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
        let rec = sim.recovery_stats();
        assert!(rec.remaps >= 1, "{rec:?}");
        assert!(rec.replayed_cycles > 0, "{rec:?}");
        // the retired tile hosts no node on the rebuilt placement
        let dead = *sim.avoid.last().unwrap();
        assert!(!sim.tile_of.contains_key(&(dead.x, dead.y)));
        // and without remap permission the hard fault propagates
        let mut stuck = StreamSim::new(&cfg).unwrap();
        stuck.attach_cmem_fault_plan_to(0, &FaultPlan::none().dead_slice(2));
        stuck.set_recovery_policy(Some(RecoveryPolicy {
            remap: false,
            ..RecoveryPolicy::default()
        }));
        assert!(matches!(stuck.run(20_000_000), Err(SimError::Fault { .. })));
    }

    #[test]
    fn replay_reclaims_lost_noc_traffic() {
        // a drop schedule that exhausts the plan's retries: without
        // recovery the run degrades; with it, the rollback reseeds the
        // drop RNG and the replay carries the traffic through
        let cfg = StreamConfig::small_test();
        let noc_plan = || {
            NocFaultPlan::with_seed(3)
                .drop_rate(0.02)
                .retry_after(64)
                .max_retries(1)
        };
        let mut bare = StreamSim::new(&cfg).unwrap();
        bare.attach_noc_fault_plan(noc_plan());
        let err = bare.run(5_000_000).unwrap_err();
        assert!(matches!(err, SimError::Degraded { .. }), "{err:?}");
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.attach_noc_fault_plan(noc_plan());
        sim.set_recovery_policy(Some(RecoveryPolicy {
            max_replays: 32,
            remap: false,
            checkpoint_values: 8,
        }));
        let r = sim.run(5_000_000).unwrap();
        assert_eq!(r.ofmap, cfg.golden());
        assert!(sim.recovery_stats().replays > 0, "{:?}", sim.recovery_stats());
    }

    #[test]
    fn engines_agree_under_recovery() {
        // rollback, reseed, and checkpoint cadence are all driven by
        // logical progress, so the two engines replay identically
        let cfg = StreamConfig::small_test();
        let run = |engine: Engine| {
            let mut sim = StreamSim::new(&cfg).unwrap();
            sim.set_engine(engine);
            sim.attach_cmem_fault_plan(&FaultPlan::with_seed(8).transient(1e-4));
            sim.set_ecc_mode(EccMode::DetectOnly);
            sim.set_noc_retry_policy(Some(RetryPolicy::default()));
            sim.set_recovery_policy(Some(RecoveryPolicy {
                max_replays: 64,
                remap: false,
                checkpoint_values: 8,
            }));
            let r = sim.run(5_000_000).unwrap();
            (r, sim.recovery_stats(), sim.ecc_stats())
        };
        let fast = run(Engine::EventDriven);
        let oracle = run(Engine::CycleAccurate);
        assert_eq!(fast.0, oracle.0, "results diverged");
        assert_eq!(fast.1, oracle.1, "recovery stats diverged");
        assert_eq!(fast.2, oracle.2, "ECC stats diverged");
    }

    #[test]
    fn dead_slice_surfaces_as_typed_fault() {
        let cfg = StreamConfig::small_test();
        let mut sim = StreamSim::new(&cfg).unwrap();
        sim.attach_cmem_fault_plan(&FaultPlan::none().dead_slice(1));
        let err = sim.run(5_000_000).unwrap_err();
        assert!(matches!(err, SimError::Fault { .. }), "{err:?}");
        assert!(sim.cmem_fault_stats().dead_slice_hits > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// The tentpole equivalence: for random small workloads — layer
        /// dims, chain length, stride, fault plans on/off — the
        /// event-driven and cycle-accurate engines produce identical
        /// `StreamResult`s (ofmap, cycles, NoC stats, energy), identical
        /// typed errors, and identical fault-plan observations.
        #[test]
        fn prop_engines_identical(
            in_c in 4usize..12,
            out_c in 1usize..4,
            hw in 5usize..7,
            salt in 0usize..8,
            two_layers in any::<bool>(),
            stride2 in any::<bool>(),
            cmem_faults in any::<bool>(),
            noc_faults in any::<bool>(),
            recovery in any::<bool>(),
        ) {
            let mut head = test_layer(in_c, out_c, salt);
            // a stride-2 head shrinks the ofmap below a second 3×3 layer,
            // so the chain is either strided or deep, not both
            let layers = if two_layers {
                vec![head, test_layer(out_c, 2, salt + 1)]
            } else {
                if stride2 {
                    head.shape.stride = 2;
                }
                vec![head]
            };
            let cfg = StreamConfig {
                layers,
                input: test_input(in_c, hw, hw),
            };
            let run_with = |engine: Engine| {
                let mut sim = StreamSim::new(&cfg).unwrap();
                sim.set_engine(engine);
                if cmem_faults {
                    sim.attach_cmem_fault_plan(
                        &FaultPlan::with_seed(salt as u64 + 17).transient(1e-4),
                    );
                }
                if noc_faults {
                    sim.attach_noc_fault_plan(
                        NocFaultPlan::with_seed(salt as u64 ^ 0xBEEF)
                            .drop_rate(0.01)
                            .retry_after(64)
                            .max_retries(3),
                    );
                }
                if recovery {
                    sim.set_ecc_mode(EccMode::Correct);
                    sim.set_noc_retry_policy(Some(RetryPolicy::default()));
                    sim.set_recovery_policy(Some(RecoveryPolicy::default()));
                }
                let r = sim.run(2_000_000);
                (
                    r,
                    sim.cmem_fault_stats(),
                    sim.noc_fault_stats(),
                    sim.recovery_stats(),
                    sim.ecc_stats(),
                )
            };
            let (fr, fc, fn_, frec, fecc) = run_with(Engine::EventDriven);
            let (or, oc, on, orec, oecc) = run_with(Engine::CycleAccurate);
            match (fr, or) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "results diverged"),
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(false, "engines disagree: {:?} vs {:?}", a, b),
            }
            prop_assert_eq!(fc, oc, "CMem fault stats diverged");
            prop_assert_eq!(fn_, on, "NoC fault stats diverged");
            prop_assert_eq!(frec, orec, "recovery stats diverged");
            prop_assert_eq!(fecc, oecc, "ECC stats diverged");
        }

        /// Thread-count equivalence on random workloads: every
        /// parallelism level reproduces the sequential `StreamResult`
        /// bit-for-bit, on both engines — the partitioned engine's merge
        /// order makes this hold by construction, and this proptest keeps
        /// it honest.
        #[test]
        fn prop_parallel_matches_sequential(
            in_c in 4usize..12,
            out_c in 1usize..4,
            hw in 5usize..7,
            salt in 0usize..8,
            threads in 2usize..9,
            cycle_accurate in any::<bool>(),
            two_layers in any::<bool>(),
        ) {
            let layers = if two_layers {
                vec![test_layer(in_c, out_c, salt), test_layer(out_c, 2, salt + 1)]
            } else {
                vec![test_layer(in_c, out_c, salt)]
            };
            let cfg = StreamConfig {
                layers,
                input: test_input(in_c, hw, hw),
            };
            let engine = if cycle_accurate {
                Engine::CycleAccurate
            } else {
                Engine::EventDriven
            };
            let mut seq = StreamSim::new(&cfg).unwrap();
            seq.set_engine(engine);
            let s = seq.run(4_000_000).unwrap();
            let mut par = StreamSim::new(&cfg).unwrap();
            par.set_engine(engine);
            par.set_parallelism(threads);
            let p = par.run(4_000_000).unwrap();
            prop_assert_eq!(p, s, "{} threads ({:?})", threads, engine);
        }

        /// Satellite regression: with empty fault plans attached, the
        /// fabric stream output and total cycle count are identical to the
        /// no-injection path for random small CONV workloads.
        #[test]
        fn prop_quiet_fault_plans_never_diverge(
            in_c in 4usize..12,
            out_c in 1usize..4,
            hw in 4usize..6,
            salt in 0usize..8,
        ) {
            let cfg = StreamConfig {
                layers: vec![test_layer(in_c, out_c, salt)],
                input: test_input(in_c, hw, hw),
            };
            let clean = StreamSim::new(&cfg).unwrap().run(2_000_000).unwrap();
            let mut quiet = StreamSim::new_avoiding(&cfg, &[]).unwrap();
            quiet.attach_cmem_fault_plan(&FaultPlan::none());
            quiet.attach_noc_fault_plan(NocFaultPlan::none());
            let r = quiet.run(2_000_000).unwrap();
            prop_assert_eq!(&r.ofmap, &clean.ofmap);
            prop_assert_eq!(r.cycles, clean.cycles);
            prop_assert_eq!(&r.ofmap, &cfg.golden());
        }
    }
}
