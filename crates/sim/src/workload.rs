//! Continuous request streams over multi-DNN deployments.
//!
//! The autonomous-driving scenario of §1 is not one inference but a
//! *stream*: every sensor fires at its own rate and each model must keep
//! up. This module closes the loop on [`crate::multi_dnn`]: given each
//! partition's batch-1 service time (from the execution model) and its
//! request rate, it reports utilization and mean response time under an
//! M/D/1 queue (Poisson arrivals, deterministic service — inference time
//! on a fixed partition does not vary).

use crate::multi_dnn::MultiDnnReport;
use crate::SimError;
use serde::{Deserialize, Serialize};

/// One model's steady-state behaviour under a request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// The network's name.
    pub name: String,
    /// Offered request rate, requests/s.
    pub rate: f64,
    /// Deterministic service time, ms.
    pub service_ms: f64,
    /// Partition utilization `ρ = λ·s` (must stay below 1).
    pub utilization: f64,
    /// Mean response time (queueing + service), ms.
    pub mean_response_ms: f64,
}

/// Steady-state report for a whole deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Per-model statistics.
    pub models: Vec<StreamStats>,
    /// The busiest partition's utilization.
    pub peak_utilization: f64,
}

/// Evaluates request streams against a spatial deployment.
///
/// `rates[i]` is model `i`'s arrival rate in requests per second. Mean
/// response time follows M/D/1: `W = s·(1 + ρ / (2(1 − ρ)))`.
///
/// # Errors
///
/// Returns [`SimError::DoesNotFit`] if rates and models disagree in count,
/// or if any partition is saturated (`ρ ≥ 1`) — the deployment cannot keep
/// up and needs a different split.
pub fn evaluate_streams(
    deployment: &MultiDnnReport,
    rates: &[f64],
) -> Result<StreamReport, SimError> {
    if rates.len() != deployment.models.len() {
        return Err(SimError::DoesNotFit {
            reason: format!(
                "{} rates for {} models",
                rates.len(),
                deployment.models.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(rates.len());
    let mut peak = 0.0f64;
    for (m, &rate) in deployment.models.iter().zip(rates) {
        let service_s = m.latency_ms / 1e3;
        let rho = rate * service_s;
        if rho >= 1.0 {
            return Err(SimError::DoesNotFit {
                reason: format!(
                    "{} saturated: {rate} req/s against {:.1} req/s capacity",
                    m.name,
                    1.0 / service_s
                ),
            });
        }
        let wait_s = service_s * rho / (2.0 * (1.0 - rho));
        peak = peak.max(rho);
        out.push(StreamStats {
            name: m.name.clone(),
            rate,
            service_ms: m.latency_ms,
            utilization: rho,
            mean_response_ms: (service_s + wait_s) * 1e3,
        });
    }
    Ok(StreamReport {
        models: out,
        peak_utilization: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_dnn::parallel_inference;
    use maicc_exec::config::ExecConfig;
    use maicc_nn::resnet::tinynet;

    fn deployment() -> MultiDnnReport {
        let a = tinynet(10);
        let cfg = ExecConfig::default();
        parallel_inference(
            &[(&a, [32, 16, 16]), (&a, [32, 16, 16])],
            210,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn light_load_response_near_service_time() {
        let d = deployment();
        let light = vec![1.0; 2];
        let r = evaluate_streams(&d, &light).unwrap();
        for (s, m) in r.models.iter().zip(&d.models) {
            assert!(s.utilization < 0.01);
            assert!((s.mean_response_ms - m.latency_ms) / m.latency_ms < 0.01);
        }
    }

    #[test]
    fn response_time_grows_with_load() {
        let d = deployment();
        let cap = 1.0 / (d.models[0].latency_ms / 1e3);
        let low = evaluate_streams(&d, &[0.2 * cap, 0.2 * cap]).unwrap();
        let high = evaluate_streams(&d, &[0.9 * cap, 0.9 * cap]).unwrap();
        assert!(high.models[0].mean_response_ms > 3.0 * low.models[0].mean_response_ms);
        assert!(high.peak_utilization > 0.85);
    }

    #[test]
    fn saturation_is_rejected_with_capacity_hint() {
        let d = deployment();
        let cap = 1.0 / (d.models[0].latency_ms / 1e3);
        let err = evaluate_streams(&d, &[1.5 * cap, 0.1 * cap]);
        match err {
            Err(SimError::DoesNotFit { reason }) => {
                assert!(reason.contains("saturated"), "{reason}");
            }
            other => panic!("expected saturation error, got {other:?}"),
        }
    }

    #[test]
    fn rate_count_must_match() {
        let d = deployment();
        assert!(evaluate_streams(&d, &[1.0]).is_err());
    }
}
