//! Word-line / bit-line accurate SRAM array model.
//!
//! An [`SramArray`] is a grid of 6T (or 8T, for CMem slice 0) bit cells
//! addressed by horizontal *word-lines* (rows) and vertical *bit-lines*
//! (columns). Beyond the ordinary single-row read/write, the model exposes
//! the **multi-row activation** of bit-line computing: activating two
//! word-lines at once makes every bit-line settle to the `AND` of the two
//! stored bits while the bit-line-bar pair yields their `NOR`
//! (Jeloka et al., JSSC 2016; Figure 2(a) of the MAICC paper).
//!
//! Rows are stored bit-packed in `u64` lanes so a 256-column row is four
//! words; all row-level logic is word-parallel.

use crate::SramError;

/// Number of bits per storage lane.
const LANE_BITS: usize = 64;

/// Number of lanes a [`LaneVec`] stores inline (256 bit-lines) before
/// spilling to the heap. Every CMem slice and Neural Cache array in the
/// model is 256 columns wide, so in practice the readout path never
/// allocates.
pub const INLINE_LANES: usize = 4;

/// A small fixed-capacity lane buffer: up to [`INLINE_LANES`] `u64` words
/// inline, heap spill only for wider arrays.
///
/// Dereferences to `[u64]`, so it drops into every place a packed row
/// slice is expected. Unused inline words are kept zeroed.
#[derive(Debug, Clone, Eq)]
pub struct LaneVec {
    inline: [u64; INLINE_LANES],
    len: usize,
    /// Used only when `len > INLINE_LANES`.
    spill: Vec<u64>,
}

impl LaneVec {
    /// A zeroed buffer of `len` lanes.
    #[must_use]
    #[inline]
    pub fn zeroed(len: usize) -> Self {
        LaneVec {
            inline: [0; INLINE_LANES],
            len,
            spill: if len > INLINE_LANES {
                vec![0; len]
            } else {
                Vec::new()
            },
        }
    }

    /// A buffer holding a copy of `lanes`.
    #[must_use]
    #[inline]
    pub fn from_slice(lanes: &[u64]) -> Self {
        let mut v = Self::zeroed(lanes.len());
        v.as_mut_slice().copy_from_slice(lanes);
        v
    }

    /// The stored lanes.
    #[must_use]
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        if self.len > INLINE_LANES {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// The stored lanes, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        if self.len > INLINE_LANES {
            &mut self.spill
        } else {
            &mut self.inline[..self.len]
        }
    }

    /// Resizes to `len` lanes, reusing the buffers (no allocation unless
    /// growing past both the inline capacity and any previous spill).
    #[inline]
    pub fn reset(&mut self, len: usize) {
        if len > INLINE_LANES {
            self.spill.clear();
            self.spill.resize(len, 0);
        } else {
            self.inline = [0; INLINE_LANES];
        }
        self.len = len;
    }
}

impl std::ops::Deref for LaneVec {
    type Target = [u64];
    #[inline]
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for LaneVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl PartialEq for LaneVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a LaneVec {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The result of simultaneously activating two word-lines: per-bit-line
/// `AND` (read from BL) and `NOR` (read from BLB) of the two stored bits.
///
/// Backed by [`LaneVec`], so for the model's 256-column arrays a readout
/// lives entirely on the stack — the multi-row activation hot loop is
/// allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitlineReadout {
    /// `AND` of the two activated rows, one bit per bit-line.
    pub and: LaneVec,
    /// `NOR` of the two activated rows, one bit per bit-line.
    pub nor: LaneVec,
}

impl BitlineReadout {
    /// An empty readout sized for `lanes` lanes, for use as a reusable
    /// scratch buffer with [`SramArray::activate_pair_into`].
    #[must_use]
    #[inline]
    pub fn scratch(lanes: usize) -> Self {
        BitlineReadout {
            and: LaneVec::zeroed(lanes),
            nor: LaneVec::zeroed(lanes),
        }
    }

    /// `XOR` of the two activated rows, derived as `NOT(AND) AND NOT(NOR)`.
    ///
    /// This is how bit-serial adders obtain the sum bit from a single
    /// activation: `xor = !(and | nor)` per bit-line. Allocation-free for
    /// arrays of up to `64 × INLINE_LANES` columns.
    #[must_use]
    #[inline]
    pub fn xor(&self) -> LaneVec {
        let mut out = LaneVec::zeroed(self.and.len());
        self.xor_into(&mut out);
        out
    }

    /// Writes the `XOR` readout into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the readout.
    #[inline]
    pub fn xor_into(&self, out: &mut [u64]) {
        for (o, (&a, &n)) in out.iter_mut().zip(self.and.iter().zip(self.nor.iter())) {
            *o = !(a | n);
        }
    }
}

/// A bit-accurate SRAM array of `rows` word-lines by `cols` bit-lines.
///
/// # Example
///
/// ```
/// use maicc_sram::array::SramArray;
///
/// # fn main() -> Result<(), maicc_sram::SramError> {
/// let mut arr = SramArray::new(64, 256);
/// arr.write_bit(3, 17, true)?;
/// assert!(arr.read_bit(3, 17)?);
/// assert!(!arr.read_bit(3, 18)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramArray {
    rows: usize,
    cols: usize,
    lanes: usize,
    /// `rows * lanes` packed words; row r occupies `data[r*lanes .. (r+1)*lanes]`.
    data: Vec<u64>,
}

impl SramArray {
    /// Creates a zero-initialised array of `rows` word-lines × `cols` bit-lines.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        let lanes = cols.div_ceil(LANE_BITS);
        SramArray {
            rows,
            cols,
            lanes,
            data: vec![0; rows * lanes],
        }
    }

    /// Number of word-lines.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit-lines.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` lanes per row.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    fn check_row(&self, row: usize) -> Result<(), SramError> {
        if row < self.rows {
            Ok(())
        } else {
            Err(SramError::RowOutOfRange {
                row,
                rows: self.rows,
            })
        }
    }

    /// Mask covering the valid bits of the last lane.
    fn tail_mask(&self) -> u64 {
        let rem = self.cols % LANE_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Reads one whole word-line as packed lanes.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    pub fn read_row(&self, row: usize) -> Result<&[u64], SramError> {
        self.check_row(row)?;
        Ok(&self.data[row * self.lanes..(row + 1) * self.lanes])
    }

    /// Overwrites one whole word-line with packed lanes.
    ///
    /// Bits beyond `cols` in the final lane are masked off so the stored
    /// state never contains phantom bits.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len()` differs from [`Self::lanes`].
    pub fn write_row(&mut self, row: usize, lanes: &[u64]) -> Result<(), SramError> {
        self.check_row(row)?;
        assert_eq!(lanes.len(), self.lanes, "lane count mismatch");
        let tail = self.tail_mask();
        let dst = &mut self.data[row * self.lanes..(row + 1) * self.lanes];
        dst.copy_from_slice(lanes);
        if let Some(last) = dst.last_mut() {
            *last &= tail;
        }
        Ok(())
    }

    /// Reads the bit at (`row`, `col`).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if either index is out of range.
    pub fn read_bit(&self, row: usize, col: usize) -> Result<bool, SramError> {
        self.check_row(row)?;
        if col >= self.cols {
            return Err(SramError::RowOutOfRange {
                row: col,
                rows: self.cols,
            });
        }
        let lane = self.data[row * self.lanes + col / LANE_BITS];
        Ok((lane >> (col % LANE_BITS)) & 1 == 1)
    }

    /// Writes the bit at (`row`, `col`).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if either index is out of range.
    pub fn write_bit(&mut self, row: usize, col: usize, value: bool) -> Result<(), SramError> {
        self.check_row(row)?;
        if col >= self.cols {
            return Err(SramError::RowOutOfRange {
                row: col,
                rows: self.cols,
            });
        }
        let lane = &mut self.data[row * self.lanes + col / LANE_BITS];
        let bit = 1u64 << (col % LANE_BITS);
        if value {
            *lane |= bit;
        } else {
            *lane &= !bit;
        }
        Ok(())
    }

    /// Sets every bit of a word-line to `value` (the `SetRow.C` primitive).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    pub fn fill_row(&mut self, row: usize, value: bool) -> Result<(), SramError> {
        self.check_row(row)?;
        let fill = if value { u64::MAX } else { 0 };
        let tail = self.tail_mask();
        let dst = &mut self.data[row * self.lanes..(row + 1) * self.lanes];
        for lane in dst.iter_mut() {
            *lane = fill;
        }
        if let Some(last) = dst.last_mut() {
            *last &= tail;
        }
        Ok(())
    }

    /// Activates word-lines `row_a` and `row_b` simultaneously and returns
    /// what the sense amplifiers observe on each bit-line pair: the `AND`
    /// (from BL) and `NOR` (from BLB) of the two stored bits.
    ///
    /// The word-line voltage is lowered during multi-row access so the read
    /// is non-destructive — the model therefore leaves the array unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if either row is out of range,
    /// or [`SramError::OperandOverlap`] if `row_a == row_b` (activating the
    /// same word-line twice is an ordinary read, not a computation).
    pub fn activate_pair(&self, row_a: usize, row_b: usize) -> Result<BitlineReadout, SramError> {
        let mut out = BitlineReadout::scratch(self.lanes);
        self.activate_pair_into(row_a, row_b, &mut out)?;
        Ok(out)
    }

    /// As [`Self::activate_pair`], but writes the readout into a
    /// caller-provided scratch buffer so repeated activations (the MAC
    /// inner loop performs `bits²` of them) never allocate.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if either row is out of range,
    /// or [`SramError::OperandOverlap`] if `row_a == row_b`.
    #[inline]
    pub fn activate_pair_into(
        &self,
        row_a: usize,
        row_b: usize,
        out: &mut BitlineReadout,
    ) -> Result<(), SramError> {
        self.check_row(row_a)?;
        self.check_row(row_b)?;
        if row_a == row_b {
            return Err(SramError::OperandOverlap {
                a: row_a,
                b: row_b,
                bits: 1,
            });
        }
        let tail = self.tail_mask();
        let a = &self.data[row_a * self.lanes..(row_a + 1) * self.lanes];
        let b = &self.data[row_b * self.lanes..(row_b + 1) * self.lanes];
        out.and.reset(self.lanes);
        out.nor.reset(self.lanes);
        let and = out.and.as_mut_slice();
        let nor = out.nor.as_mut_slice();
        for i in 0..self.lanes {
            let mask = if i + 1 == self.lanes { tail } else { u64::MAX };
            and[i] = a[i] & b[i] & mask;
            nor[i] = !(a[i] | b[i]) & mask;
        }
        Ok(())
    }

    /// Copies word-line `src` of `from` into word-line `dst` of `self`.
    ///
    /// Used by `Move.C` (inter-slice copy) and by the slice-0 horizontal
    /// read-out path.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if either row is out of range.
    ///
    /// # Panics
    ///
    /// Panics if the two arrays have a different number of bit-lines.
    pub fn copy_row_from(
        &mut self,
        dst: usize,
        from: &SramArray,
        src: usize,
    ) -> Result<(), SramError> {
        assert_eq!(self.cols, from.cols, "bit-line count mismatch");
        let lanes = from.read_row(src)?.to_vec();
        self.write_row(dst, &lanes)
    }

    /// Population count of a packed row restricted to the first `cols` bits,
    /// with an optional per-bit-line mask applied first.
    ///
    /// This is the model of the **adder tree** at the bottom of a computing
    /// slice (Figure 4(b) step 2): it sums the 256 bit-line values in one
    /// pipelined step.
    #[must_use]
    #[inline]
    pub fn popcount_lanes(lanes: &[u64], mask: Option<&[u64]>) -> u32 {
        match mask {
            Some(m) => lanes
                .iter()
                .zip(m)
                .map(|(&l, &mm)| (l & mm).count_ones())
                .sum(),
            None => lanes.iter().map(|&l| l.count_ones()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let arr = SramArray::new(4, 128);
        for r in 0..4 {
            assert!(arr.read_row(r).unwrap().iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn rows_cols_lanes() {
        let arr = SramArray::new(64, 256);
        assert_eq!(arr.rows(), 64);
        assert_eq!(arr.cols(), 256);
        assert_eq!(arr.lanes(), 4);
    }

    #[test]
    fn odd_width_lanes() {
        let arr = SramArray::new(2, 100);
        assert_eq!(arr.lanes(), 2);
    }

    #[test]
    fn bit_roundtrip() {
        let mut arr = SramArray::new(8, 70);
        arr.write_bit(5, 69, true).unwrap();
        assert!(arr.read_bit(5, 69).unwrap());
        arr.write_bit(5, 69, false).unwrap();
        assert!(!arr.read_bit(5, 69).unwrap());
    }

    #[test]
    fn row_write_masks_tail() {
        let mut arr = SramArray::new(2, 65);
        arr.write_row(0, &[u64::MAX, u64::MAX]).unwrap();
        let row = arr.read_row(0).unwrap();
        assert_eq!(row[0], u64::MAX);
        assert_eq!(row[1], 1, "only one valid bit in the tail lane");
    }

    #[test]
    fn fill_row_sets_and_clears() {
        let mut arr = SramArray::new(4, 256);
        arr.fill_row(2, true).unwrap();
        assert_eq!(
            SramArray::popcount_lanes(arr.read_row(2).unwrap(), None),
            256
        );
        arr.fill_row(2, false).unwrap();
        assert_eq!(SramArray::popcount_lanes(arr.read_row(2).unwrap(), None), 0);
    }

    #[test]
    fn activate_pair_computes_and_nor() {
        let mut arr = SramArray::new(4, 4);
        // row 0 = 0b0011, row 1 = 0b0101 (bit k at column k)
        arr.write_row(0, &[0b0011]).unwrap();
        arr.write_row(1, &[0b0101]).unwrap();
        let out = arr.activate_pair(0, 1).unwrap();
        assert_eq!(out.and[0], 0b0001);
        assert_eq!(out.nor[0], 0b1000);
        assert_eq!(out.xor()[0] & 0b1111, 0b0110);
    }

    #[test]
    fn activate_pair_nondestructive() {
        let mut arr = SramArray::new(4, 64);
        arr.write_row(0, &[0xDEAD_BEEF]).unwrap();
        arr.write_row(3, &[0x1234_5678]).unwrap();
        let before = arr.clone();
        let _ = arr.activate_pair(0, 3).unwrap();
        assert_eq!(arr, before);
    }

    #[test]
    fn activate_same_row_rejected() {
        let arr = SramArray::new(4, 64);
        assert!(matches!(
            arr.activate_pair(1, 1),
            Err(SramError::OperandOverlap { .. })
        ));
    }

    #[test]
    fn out_of_range_row_rejected() {
        let arr = SramArray::new(4, 64);
        assert!(matches!(
            arr.read_row(4),
            Err(SramError::RowOutOfRange { row: 4, rows: 4 })
        ));
    }

    #[test]
    fn copy_row_between_arrays() {
        let mut a = SramArray::new(4, 256);
        let mut b = SramArray::new(8, 256);
        a.write_row(1, &[1, 2, 3, 4]).unwrap();
        b.copy_row_from(7, &a, 1).unwrap();
        assert_eq!(b.read_row(7).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn popcount_with_mask() {
        let lanes = [u64::MAX, u64::MAX];
        let mask = [0xFF, 0x0F];
        assert_eq!(SramArray::popcount_lanes(&lanes, Some(&mask)), 12);
        assert_eq!(SramArray::popcount_lanes(&lanes, None), 128);
    }
}
