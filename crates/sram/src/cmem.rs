//! The full eight-slice computing memory of one MAICC node.
//!
//! [`Cmem`] bundles eight [`CmemSlice`]s (Figure 3(c)) behind the interface
//! the extended ISA of Table 2 sees:
//!
//! * **slice 0** uses 8T cells, is *byte-addressable vertically* (ordinary
//!   `load`/`store` land here, Figure 5) and row-addressable horizontally —
//!   writing a vector byte-by-byte and reading rows out performs the
//!   transpose for free;
//! * **slices 1–7** are compute-only: row-indexed, reachable only through
//!   `MAC.C` / `Move.C` / `SetRow.C` / `ShiftRow.C` / `LoadRow.RC` /
//!   `StoreRow.RC`.
//!
//! Every operation updates an [`EnergyMeter`] so node- and chip-level models
//! can report energy without re-deriving circuit constants.

use crate::energy::EnergyMeter;
use crate::slice::{CmemSlice, ShiftDir};
use crate::{SramError, BITLINES, NUM_SLICES, SLICE_ROWS};

/// Bytes addressable in slice 0 (2 KB).
pub const SLICE0_BYTES: usize = SLICE_ROWS * BITLINES / 8;

/// The computing memory of one MAICC node: eight 2 KB slices.
///
/// # Example
///
/// ```
/// use maicc_sram::cmem::Cmem;
///
/// # fn main() -> Result<(), maicc_sram::SramError> {
/// let mut cmem = Cmem::new();
/// // Vertical byte writes into slice 0 build a transposed 8-bit vector...
/// for k in 0..256 {
///     cmem.store_byte(k, (k % 10) as u8)?;
/// }
/// // ...which Move.C broadcasts to computing slice 3.
/// cmem.move_vector(0, 0, 3, 0, 8)?;
/// cmem.write_vector_u8(3, 8, &[2u8; 256])?;
/// let sum: u64 = (0..256).map(|k| (k % 10) as u64 * 2).sum();
/// assert_eq!(cmem.mac_u8(3, 0, 8)?, sum);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cmem {
    slices: Vec<CmemSlice>,
    meter: EnergyMeter,
}

impl Default for Cmem {
    fn default() -> Self {
        Self::new()
    }
}

impl Cmem {
    /// Creates a zeroed CMem with all masks enabled.
    #[must_use]
    pub fn new() -> Self {
        Cmem {
            slices: (0..NUM_SLICES).map(|_| CmemSlice::new()).collect(),
            meter: EnergyMeter::new(),
        }
    }

    fn check_slice(&self, slice: usize) -> Result<(), SramError> {
        if slice < NUM_SLICES {
            Ok(())
        } else {
            Err(SramError::SliceOutOfRange { slice })
        }
    }

    /// Immutable access to one slice.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::SliceOutOfRange`] for `slice >= 8`.
    pub fn slice(&self, slice: usize) -> Result<&CmemSlice, SramError> {
        self.check_slice(slice)?;
        Ok(&self.slices[slice])
    }

    /// Mutable access to one slice.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::SliceOutOfRange`] for `slice >= 8`.
    pub fn slice_mut(&mut self, slice: usize) -> Result<&mut CmemSlice, SramError> {
        self.check_slice(slice)?;
        Ok(&mut self.slices[slice])
    }

    /// Accumulated energy meter.
    #[must_use]
    pub fn energy(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Resets the energy meter to zero.
    pub fn reset_energy(&mut self) {
        self.meter = EnergyMeter::new();
    }

    // ------------------------------------------------------------------
    // Slice-0 byte addressing (Figure 5)
    // ------------------------------------------------------------------

    /// Stores one byte at slice-0 byte address `addr` (vertical write).
    ///
    /// Address `a` maps to bit-line `a % 256`, word-lines
    /// `8*(a/256) .. 8*(a/256)+8`; storing bytes `0..=255` therefore lays an
    /// 8-bit, 256-element vector out *already transposed* in rows `0..8`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::ByteAddrOutOfRange`] for `addr >= 2048`.
    pub fn store_byte(&mut self, addr: usize, value: u8) -> Result<(), SramError> {
        if addr >= SLICE0_BYTES {
            return Err(SramError::ByteAddrOutOfRange { addr });
        }
        let col = addr % BITLINES;
        let row_base = (addr / BITLINES) * 8;
        for i in 0..8 {
            self.slices[0]
                .array_mut()
                .write_bit(row_base + i, col, (value >> i) & 1 == 1)?;
        }
        self.meter.count_vertical_write(1);
        Ok(())
    }

    /// Loads one byte from slice-0 byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::ByteAddrOutOfRange`] for `addr >= 2048`.
    pub fn load_byte(&self, addr: usize) -> Result<u8, SramError> {
        if addr >= SLICE0_BYTES {
            return Err(SramError::ByteAddrOutOfRange { addr });
        }
        let col = addr % BITLINES;
        let row_base = (addr / BITLINES) * 8;
        let mut v = 0u8;
        for i in 0..8 {
            if self.slices[0].array().read_bit(row_base + i, col)? {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Table-2 primitives
    // ------------------------------------------------------------------

    /// `Move.C`: copies an n-bit vector (n word-lines) from
    /// (`src_slice`, `src_row`) to (`dst_slice`, `dst_row`).
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors from the underlying arrays.
    pub fn move_vector(
        &mut self,
        src_slice: usize,
        src_row: usize,
        dst_slice: usize,
        dst_row: usize,
        bits: usize,
    ) -> Result<(), SramError> {
        self.check_slice(src_slice)?;
        self.check_slice(dst_slice)?;
        if !(1..=16).contains(&bits) {
            return Err(SramError::UnsupportedWidth { bits });
        }
        for i in 0..bits {
            let lanes = self.slices[src_slice]
                .array()
                .read_row(src_row + i)?
                .to_vec();
            if src_slice == dst_slice {
                self.slices[src_slice]
                    .array_mut()
                    .write_row(dst_row + i, &lanes)?;
            } else {
                self.slices[dst_slice]
                    .array_mut()
                    .write_row(dst_row + i, &lanes)?;
            }
        }
        self.meter.count_move(1);
        Ok(())
    }

    /// `MAC.C`: inner product of two transposed vectors in one slice;
    /// the scalar result is destined for a core register.
    ///
    /// # Errors
    ///
    /// Propagates the domain errors of [`CmemSlice::mac`].
    pub fn mac(
        &mut self,
        slice: usize,
        base_a: usize,
        base_b: usize,
        bits: usize,
        signed: bool,
    ) -> Result<i64, SramError> {
        self.check_slice(slice)?;
        let r = self.slices[slice].mac(base_a, base_b, bits, signed)?;
        self.meter.count_mac(1);
        Ok(r)
    }

    /// `SetRow.C`: clears or sets one row of one slice.
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    pub fn set_row(&mut self, slice: usize, row: usize, value: bool) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.slices[slice].set_row(row, value)?;
        self.meter.count_set_row(1);
        Ok(())
    }

    /// `ShiftRow.C`: shifts one row by `granules × 32` bit-lines.
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    pub fn shift_row(
        &mut self,
        slice: usize,
        row: usize,
        dir: ShiftDir,
        granules: usize,
    ) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.slices[slice].shift_row(row, dir, granules)?;
        self.meter.count_shift_row(1);
        Ok(())
    }

    /// Reads one raw row — the local half of `StoreRow.RC` (the packet body
    /// that `maicc-noc` will carry to another node).
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    pub fn read_row_remote(&mut self, slice: usize, row: usize) -> Result<Vec<u64>, SramError> {
        self.check_slice(slice)?;
        let lanes = self.slices[slice].array().read_row(row)?.to_vec();
        self.meter.count_remote_row(1);
        Ok(lanes)
    }

    /// Writes one raw row — the local half of `LoadRow.RC` (a row arriving
    /// from another node).
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not exactly four `u64` words (256 bit-lines).
    pub fn write_row_remote(
        &mut self,
        slice: usize,
        row: usize,
        lanes: &[u64],
    ) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.slices[slice].array_mut().write_row(row, lanes)?;
        self.meter.count_remote_row(1);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Convenience views used by the execution framework and tests
    // ------------------------------------------------------------------

    /// Writes an unsigned 8-bit vector transposed at (`slice`, `base`).
    ///
    /// # Errors
    ///
    /// Propagates slice/vector range errors.
    pub fn write_vector_u8(&mut self, slice: usize, base: usize, v: &[u8]) -> Result<(), SramError> {
        self.check_slice(slice)?;
        let words: Vec<u16> = v.iter().map(|&x| x as u16).collect();
        self.slices[slice].write_vector(base, &words, 8)
    }

    /// Writes a signed 8-bit vector (two's complement) at (`slice`, `base`).
    ///
    /// # Errors
    ///
    /// Propagates slice/vector range errors.
    pub fn write_vector_i8(&mut self, slice: usize, base: usize, v: &[i8]) -> Result<(), SramError> {
        self.check_slice(slice)?;
        let words: Vec<u16> = v.iter().map(|&x| x as u8 as u16).collect();
        self.slices[slice].write_vector(base, &words, 8)
    }

    /// Unsigned 8-bit MAC returning the non-negative dot product.
    ///
    /// # Errors
    ///
    /// Propagates the domain errors of [`Self::mac`].
    pub fn mac_u8(&mut self, slice: usize, base_a: usize, base_b: usize) -> Result<u64, SramError> {
        Ok(self.mac(slice, base_a, base_b, 8, false)? as u64)
    }

    /// Signed 8-bit MAC.
    ///
    /// # Errors
    ///
    /// Propagates the domain errors of [`Self::mac`].
    pub fn mac_i8(&mut self, slice: usize, base_a: usize, base_b: usize) -> Result<i64, SramError> {
        self.mac(slice, base_a, base_b, 8, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byte_roundtrip_all_addresses_sampled() {
        let mut c = Cmem::new();
        for addr in (0..SLICE0_BYTES).step_by(37) {
            c.store_byte(addr, (addr % 251) as u8).unwrap();
        }
        for addr in (0..SLICE0_BYTES).step_by(37) {
            assert_eq!(c.load_byte(addr).unwrap(), (addr % 251) as u8);
        }
    }

    #[test]
    fn byte_addr_out_of_range() {
        let mut c = Cmem::new();
        assert!(matches!(
            c.store_byte(SLICE0_BYTES, 1),
            Err(SramError::ByteAddrOutOfRange { .. })
        ));
        assert!(matches!(
            c.load_byte(usize::MAX),
            Err(SramError::ByteAddrOutOfRange { .. })
        ));
    }

    #[test]
    fn vertical_write_transposes_for_free() {
        // Bytes 0..256 written vertically appear as a transposed vector in
        // rows 0..8 — the Figure-5 mechanism.
        let mut c = Cmem::new();
        let v: Vec<u8> = (0..=255).collect();
        for (k, &b) in v.iter().enumerate() {
            c.store_byte(k, b).unwrap();
        }
        let read = c.slice(0).unwrap().read_vector(0, 8, 256).unwrap();
        assert_eq!(read, v.iter().map(|&b| b as u16).collect::<Vec<_>>());
    }

    #[test]
    fn second_row_group_maps_to_rows_8_16() {
        let mut c = Cmem::new();
        c.store_byte(256, 0xFF).unwrap();
        let read = c.slice(0).unwrap().read_vector(8, 8, 1).unwrap();
        assert_eq!(read[0], 0xFF);
    }

    #[test]
    fn move_between_slices() {
        let mut c = Cmem::new();
        c.write_vector_u8(0, 0, &[9u8; 256]).unwrap();
        c.move_vector(0, 0, 5, 24, 8).unwrap();
        let got = c.slice(5).unwrap().read_vector(24, 8, 256).unwrap();
        assert!(got.iter().all(|&x| x == 9));
    }

    #[test]
    fn move_within_slice() {
        let mut c = Cmem::new();
        c.write_vector_u8(2, 0, &[5u8; 256]).unwrap();
        c.move_vector(2, 0, 2, 16, 8).unwrap();
        let got = c.slice(2).unwrap().read_vector(16, 8, 256).unwrap();
        assert!(got.iter().all(|&x| x == 5));
    }

    #[test]
    fn mac_after_move_broadcast() {
        // The Algorithm-1 pattern: ifmap enters slice 0, broadcast to the
        // seven computing slices, MAC against resident filters.
        let mut c = Cmem::new();
        let ifmap: Vec<u8> = (0..256).map(|i| (i % 23) as u8).collect();
        c.write_vector_u8(0, 0, &ifmap).unwrap();
        for s in 1..8 {
            c.move_vector(0, 0, s, 0, 8).unwrap();
            let filt: Vec<u8> = (0..256).map(|i| ((i + s) % 11) as u8).collect();
            c.write_vector_u8(s, 8, &filt).unwrap();
            let expect: u64 = ifmap
                .iter()
                .zip(&filt)
                .map(|(&x, &y)| x as u64 * y as u64)
                .sum();
            assert_eq!(c.mac_u8(s, 0, 8).unwrap(), expect);
        }
    }

    #[test]
    fn remote_row_roundtrip() {
        let mut c1 = Cmem::new();
        let mut c2 = Cmem::new();
        c1.write_vector_u8(0, 0, &[7u8; 256]).unwrap();
        // StoreRow.RC from node 1 to node 2, row by row
        for i in 0..8 {
            let lanes = c1.read_row_remote(0, i).unwrap();
            c2.write_row_remote(0, i, &lanes).unwrap();
        }
        assert_eq!(
            c2.slice(0).unwrap().read_vector(0, 8, 256).unwrap(),
            vec![7u16; 256]
        );
        assert_eq!(c1.energy().remote_rows(), 8);
        assert_eq!(c2.energy().remote_rows(), 8);
    }

    #[test]
    fn slice_out_of_range() {
        let mut c = Cmem::new();
        assert!(matches!(
            c.mac(8, 0, 8, 8, false),
            Err(SramError::SliceOutOfRange { slice: 8 })
        ));
        assert!(c.slice(9).is_err());
    }

    #[test]
    fn energy_accounts_each_primitive() {
        let mut c = Cmem::new();
        c.store_byte(0, 1).unwrap();
        c.write_vector_u8(1, 0, &[1u8; 256]).unwrap();
        c.write_vector_u8(1, 8, &[1u8; 256]).unwrap();
        c.mac_u8(1, 0, 8).unwrap();
        c.move_vector(1, 0, 2, 0, 8).unwrap();
        c.set_row(3, 0, true).unwrap();
        c.shift_row(3, 0, ShiftDir::Left, 1).unwrap();
        let pj = c.energy().total_pj();
        let expect = crate::energy::VERTICAL_WRITE_PJ
            + crate::energy::MAC_PJ
            + crate::energy::MOVE_PJ
            + crate::energy::SET_ROW_PJ
            + crate::energy::SHIFT_ROW_PJ;
        assert!((pj - expect).abs() < 1e-9, "{pj} vs {expect}");
    }

    #[test]
    fn reset_energy_zeroes_meter() {
        let mut c = Cmem::new();
        c.store_byte(0, 1).unwrap();
        c.reset_energy();
        assert_eq!(c.energy().total_pj(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_byte_roundtrip(addr in 0usize..SLICE0_BYTES, v in any::<u8>()) {
            let mut c = Cmem::new();
            c.store_byte(addr, v).unwrap();
            prop_assert_eq!(c.load_byte(addr).unwrap(), v);
        }

        #[test]
        fn prop_signed_mac_through_full_path(
            ifmap in proptest::collection::vec(any::<i8>(), 256),
            filt in proptest::collection::vec(any::<i8>(), 256),
        ) {
            let mut c = Cmem::new();
            c.write_vector_i8(0, 0, &ifmap).unwrap();
            c.move_vector(0, 0, 4, 0, 8).unwrap();
            c.write_vector_i8(4, 8, &filt).unwrap();
            let expect: i64 = ifmap.iter().zip(&filt)
                .map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(c.mac_i8(4, 0, 8).unwrap(), expect);
        }
    }
}
