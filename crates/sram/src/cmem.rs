//! The full eight-slice computing memory of one MAICC node.
//!
//! [`Cmem`] bundles eight [`CmemSlice`]s (Figure 3(c)) behind the interface
//! the extended ISA of Table 2 sees:
//!
//! * **slice 0** uses 8T cells, is *byte-addressable vertically* (ordinary
//!   `load`/`store` land here, Figure 5) and row-addressable horizontally —
//!   writing a vector byte-by-byte and reading rows out performs the
//!   transpose for free;
//! * **slices 1–7** are compute-only: row-indexed, reachable only through
//!   `MAC.C` / `Move.C` / `SetRow.C` / `ShiftRow.C` / `LoadRow.RC` /
//!   `StoreRow.RC`.
//!
//! Every operation updates an [`EnergyMeter`] so node- and chip-level models
//! can report energy without re-deriving circuit constants.

use crate::ecc::{EccMode, EccState, EccStats};
use crate::energy::EnergyMeter;
use crate::fault::{FaultPlan, FaultRng, FaultState, FaultStats, StuckAt};
use crate::slice::{CmemSlice, ShiftDir};
use crate::{timing, SramError, BITLINES, NUM_SLICES, SLICE_ROWS};
use std::ops::Range;

/// Bytes addressable in slice 0 (2 KB).
pub const SLICE0_BYTES: usize = SLICE_ROWS * BITLINES / 8;

/// The computing memory of one MAICC node: eight 2 KB slices.
///
/// # Example
///
/// ```
/// use maicc_sram::cmem::Cmem;
///
/// # fn main() -> Result<(), maicc_sram::SramError> {
/// let mut cmem = Cmem::new();
/// // Vertical byte writes into slice 0 build a transposed 8-bit vector...
/// for k in 0..256 {
///     cmem.store_byte(k, (k % 10) as u8)?;
/// }
/// // ...which Move.C broadcasts to computing slice 3.
/// cmem.move_vector(0, 0, 3, 0, 8)?;
/// cmem.write_vector_u8(3, 8, &[2u8; 256])?;
/// let sum: u64 = (0..256).map(|k| (k % 10) as u64 * 2).sum();
/// assert_eq!(cmem.mac_u8(3, 0, 8)?, sum);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cmem {
    slices: Vec<CmemSlice>,
    meter: EnergyMeter,
    /// Fault-injection state; `None` (the default) is the zero-overhead
    /// path: no RNG draws, bit- and cycle-identical to the seed model.
    fault: Option<Box<FaultState>>,
    /// SECDED-style row protection; `None` ([`EccMode::Off`], the default)
    /// is the zero-overhead path: no bookkeeping, no surcharge.
    ecc: Option<Box<EccState>>,
}

impl Default for Cmem {
    fn default() -> Self {
        Self::new()
    }
}

impl Cmem {
    /// Creates a zeroed CMem with all masks enabled.
    #[must_use]
    pub fn new() -> Self {
        Cmem {
            slices: (0..NUM_SLICES).map(|_| CmemSlice::new()).collect(),
            meter: EnergyMeter::new(),
            fault: None,
            ecc: None,
        }
    }

    /// Creates a zeroed CMem with a fault plan already attached.
    #[must_use]
    pub fn with_fault_plan(plan: FaultPlan) -> Self {
        let mut c = Self::new();
        c.attach_fault_plan(plan);
        c
    }

    /// Attaches (or replaces) a fault plan; injection starts immediately.
    ///
    /// Attaching [`FaultPlan::none`] is equivalent to no plan at all.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(Box::new(FaultState::new(plan)));
    }

    /// Removes the fault plan, returning the accumulated stats.
    pub fn detach_fault_plan(&mut self) -> FaultStats {
        self.fault.take().map(|f| f.stats).unwrap_or_default()
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Fault events injected so far (zero when no plan is attached).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Re-seeds the attached fault plan's RNG with a replay salt, so a
    /// rolled-back re-execution draws a fresh (but still deterministic)
    /// transient-upset schedule instead of deterministically re-hitting
    /// the same one. No-op without a plan.
    pub fn reseed_fault_rng(&mut self, salt: u64) {
        if let Some(f) = self.fault.as_deref_mut() {
            f.rng = FaultRng::new(f.plan.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }

    /// Sets the ECC protection level. [`EccMode::Off`] drops all ECC
    /// state and surcharge. Enable *before* writing data or attaching a
    /// fault plan — parity starts clean at the moment of the call.
    pub fn set_ecc_mode(&mut self, mode: EccMode) {
        self.ecc = mode.is_on().then(|| Box::new(EccState::new(mode)));
    }

    /// The active ECC protection level.
    #[must_use]
    pub fn ecc_mode(&self) -> EccMode {
        self.ecc.as_ref().map_or(EccMode::Off, |e| e.mode)
    }

    /// ECC activity counters (all-zero under [`EccMode::Off`]).
    #[must_use]
    pub fn ecc_stats(&self) -> EccStats {
        self.ecc.as_ref().map_or_else(EccStats::default, |e| e.stats)
    }

    /// Parity regeneration after a write-class operation rewrote `rows`
    /// of `slice` (`col` restricts coverage to one bit-line, for the
    /// vertical byte store). Charges the encode surcharge.
    fn ecc_encode(&mut self, slice: usize, rows: Range<usize>, col: Option<usize>) {
        let Some(e) = self.ecc.as_deref_mut() else {
            return;
        };
        e.stats.encodes += 1;
        e.stats.cycle_surcharge += timing::ecc_encode_cycles();
        self.meter.count_ecc_encode(1);
        for row in rows.start..rows.end.min(SLICE_ROWS) {
            e.clear_row(slice, row, col);
        }
    }

    /// Syndrome check over the rows a read-class operation activates.
    ///
    /// Returns the `(row, col, intended)` repairs Correct mode must apply
    /// for the operation to observe clean data (empty under `Off`).
    ///
    /// # Errors
    ///
    /// [`SramError::EccUncorrectable`] on any mismatch in DetectOnly
    /// mode, or a multi-bit-per-row mismatch in Correct mode.
    fn ecc_check(
        &mut self,
        slice: usize,
        rows: Range<usize>,
    ) -> Result<Vec<(usize, usize, bool)>, SramError> {
        let Some(e) = self.ecc.as_deref_mut() else {
            return Ok(Vec::new());
        };
        e.stats.checks += 1;
        e.stats.cycle_surcharge += timing::ecc_check_cycles();
        self.meter.count_ecc_check(1);
        let mut repairs = Vec::new();
        for row in rows.start..rows.end.min(SLICE_ROWS) {
            let Some(entries) = e.mismatches.get(&(slice, row)) else {
                continue;
            };
            match (e.mode, entries.len()) {
                (_, 0) => {}
                (EccMode::Correct, 1) => {
                    let (col, intended) = entries[0];
                    repairs.push((row, col, intended));
                }
                _ => {
                    e.stats.detected_uncorrectable += 1;
                    return Err(SramError::EccUncorrectable { slice, row });
                }
            }
        }
        let corrected = repairs.len() as u64;
        e.stats.corrected += corrected;
        e.stats.cycle_surcharge += corrected * timing::ecc_correct_cycles();
        self.meter.count_ecc_correct(corrected);
        Ok(repairs)
    }

    /// Temporarily writes the intended values of `repairs` into the array
    /// so the operation observes corrected data; returns the bits to put
    /// back afterwards (correct-on-read leaves the array faulty).
    fn ecc_apply_repairs(
        &mut self,
        slice: usize,
        repairs: &[(usize, usize, bool)],
    ) -> Vec<(usize, usize, bool)> {
        let mut restore = Vec::new();
        for &(row, col, intended) in repairs {
            if let Ok(cur) = self.slices[slice].array().read_bit(row, col) {
                if cur != intended {
                    restore.push((row, col, cur));
                    let _ = self.slices[slice].array_mut().write_bit(row, col, intended);
                }
            }
        }
        restore
    }

    /// Puts the physically-faulty bits back after a corrected operation.
    /// Rows in `skip_rows` were overwritten by the operation itself and
    /// keep their new (re-encoded) contents.
    fn ecc_restore(
        &mut self,
        slice: usize,
        restore: &[(usize, usize, bool)],
        skip_rows: Option<Range<usize>>,
    ) {
        for &(row, col, prev) in restore {
            if skip_rows.as_ref().is_some_and(|r| r.contains(&row)) {
                continue;
            }
            let _ = self.slices[slice].array_mut().write_bit(row, col, prev);
        }
    }

    /// Draws a transient upset for a `width`-bit read-class result and
    /// filters it through the ECC layer: `Ok(Some(bit))` lands the flip
    /// (no protection), `Ok(None)` means no upset or a corrected one.
    ///
    /// # Errors
    ///
    /// [`SramError::EccUncorrectable`] when DetectOnly mode catches an
    /// upset it cannot fix.
    fn draw_flip_checked(
        &mut self,
        width: u64,
        slice: usize,
        row: usize,
    ) -> Result<Option<u64>, SramError> {
        let Some(bit) = self.draw_flip(width) else {
            return Ok(None);
        };
        let Some(e) = self.ecc.as_deref_mut() else {
            return Ok(Some(bit));
        };
        match e.mode {
            EccMode::Correct => {
                e.stats.corrected += 1;
                e.stats.cycle_surcharge += timing::ecc_correct_cycles();
                self.meter.count_ecc_correct(1);
                Ok(None)
            }
            _ => {
                e.stats.detected_uncorrectable += 1;
                Err(SramError::EccUncorrectable { slice, row })
            }
        }
    }

    /// Rejects accesses to a slice the fault plan marks dead.
    fn check_alive(&mut self, slice: usize) -> Result<(), SramError> {
        if let Some(f) = &mut self.fault {
            if f.is_dead(slice) {
                f.stats.dead_slice_hits += 1;
                self.meter.count_fault(1);
                return Err(SramError::SliceFailed { slice });
            }
        }
        Ok(())
    }

    /// Re-asserts stuck-at cells of `slice` after a write touched it: a
    /// stuck cell cannot hold the value just written, so every later read
    /// (byte load, MAC, row transfer) consistently sees the stuck value.
    fn enforce_stuck(&mut self, slice: usize) {
        let Some(mut f) = self.fault.take() else {
            return;
        };
        let mut forced = 0u64;
        let mut noted: Vec<(usize, usize, bool)> = Vec::new();
        for cell in f.plan.stuck_cells.iter().filter(|c| c.slice == slice) {
            let want = cell.value == StuckAt::One;
            if let Ok(cur) = self.slices[slice].array().read_bit(cell.row, cell.col) {
                if cur != want {
                    let _ = self.slices[slice].array_mut().write_bit(cell.row, cell.col, want);
                    forced += 1;
                    if self.ecc.is_some() {
                        // Parity was generated over the *intended* write
                        // data; the stuck cell now disagrees with it.
                        noted.push((cell.row, cell.col, cur));
                    }
                }
            }
        }
        f.stats.stuck_bits_forced += forced;
        self.meter.count_fault(forced);
        self.fault = Some(f);
        if let Some(e) = self.ecc.as_deref_mut() {
            for (row, col, intended) in noted {
                e.note_mismatch(slice, row, col, intended);
            }
        }
    }

    /// Draws a transient upset bit index in `0..width`, tallying it.
    fn draw_flip(&mut self, width: u64) -> Option<u64> {
        let f = self.fault.as_mut()?;
        let bit = f.draw_flip(width)?;
        self.meter.count_fault(1);
        Some(bit)
    }

    fn check_slice(&self, slice: usize) -> Result<(), SramError> {
        if slice < NUM_SLICES {
            Ok(())
        } else {
            Err(SramError::SliceOutOfRange { slice })
        }
    }

    /// Immutable access to one slice.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::SliceOutOfRange`] for `slice >= 8`.
    pub fn slice(&self, slice: usize) -> Result<&CmemSlice, SramError> {
        self.check_slice(slice)?;
        Ok(&self.slices[slice])
    }

    /// Mutable access to one slice.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::SliceOutOfRange`] for `slice >= 8`.
    pub fn slice_mut(&mut self, slice: usize) -> Result<&mut CmemSlice, SramError> {
        self.check_slice(slice)?;
        Ok(&mut self.slices[slice])
    }

    /// Accumulated energy meter.
    #[must_use]
    pub fn energy(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Resets the energy meter to zero.
    pub fn reset_energy(&mut self) {
        self.meter = EnergyMeter::new();
    }

    // ------------------------------------------------------------------
    // Slice-0 byte addressing (Figure 5)
    // ------------------------------------------------------------------

    /// Stores one byte at slice-0 byte address `addr` (vertical write).
    ///
    /// Address `a` maps to bit-line `a % 256`, word-lines
    /// `8*(a/256) .. 8*(a/256)+8`; storing bytes `0..=255` therefore lays an
    /// 8-bit, 256-element vector out *already transposed* in rows `0..8`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::ByteAddrOutOfRange`] for `addr >= 2048`.
    pub fn store_byte(&mut self, addr: usize, value: u8) -> Result<(), SramError> {
        if addr >= SLICE0_BYTES {
            return Err(SramError::ByteAddrOutOfRange { addr });
        }
        self.check_alive(0)?;
        let col = addr % BITLINES;
        let row_base = (addr / BITLINES) * 8;
        for i in 0..8 {
            self.slices[0]
                .array_mut()
                .write_bit(row_base + i, col, (value >> i) & 1 == 1)?;
        }
        self.ecc_encode(0, row_base..row_base + 8, Some(col));
        self.enforce_stuck(0);
        self.meter.count_vertical_write(1);
        Ok(())
    }

    /// Loads one byte from slice-0 byte address `addr`.
    ///
    /// Takes `&mut self` because a read is an *event* to the fault model:
    /// it may draw a transient upset from the attached plan's RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::ByteAddrOutOfRange`] for `addr >= 2048`, or
    /// [`SramError::SliceFailed`] when a fault plan marks slice 0 dead.
    pub fn load_byte(&mut self, addr: usize) -> Result<u8, SramError> {
        if addr >= SLICE0_BYTES {
            return Err(SramError::ByteAddrOutOfRange { addr });
        }
        self.check_alive(0)?;
        let col = addr % BITLINES;
        let row_base = (addr / BITLINES) * 8;
        let mut v = 0u8;
        for i in 0..8 {
            if self.slices[0].array().read_bit(row_base + i, col)? {
                v |= 1 << i;
            }
        }
        // Correct-on-read: mismatched cells on this bit-line are fixed in
        // the returned copy; the array keeps its faulty contents.
        for (row, rcol, intended) in self.ecc_check(0, row_base..row_base + 8)? {
            if rcol == col {
                let i = row - row_base;
                if intended {
                    v |= 1 << i;
                } else {
                    v &= !(1 << i);
                }
            }
        }
        if let Some(bit) = self.draw_flip_checked(8, 0, row_base)? {
            v ^= 1 << bit;
        }
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Table-2 primitives
    // ------------------------------------------------------------------

    /// `Move.C`: copies an n-bit vector (n word-lines) from
    /// (`src_slice`, `src_row`) to (`dst_slice`, `dst_row`).
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors from the underlying arrays.
    pub fn move_vector(
        &mut self,
        src_slice: usize,
        src_row: usize,
        dst_slice: usize,
        dst_row: usize,
        bits: usize,
    ) -> Result<(), SramError> {
        self.check_slice(src_slice)?;
        self.check_slice(dst_slice)?;
        self.check_alive(src_slice)?;
        self.check_alive(dst_slice)?;
        if !(1..=16).contains(&bits) {
            return Err(SramError::UnsupportedWidth { bits });
        }
        // Correct-on-read: the source rows are activated, so the move
        // carries the *corrected* data even if the array stays faulty.
        let repairs = self.ecc_check(src_slice, src_row..src_row + bits)?;
        let restore = self.ecc_apply_repairs(src_slice, &repairs);
        for i in 0..bits {
            let lanes = self.slices[src_slice]
                .array()
                .read_row(src_row + i)?
                .to_vec();
            if src_slice == dst_slice {
                self.slices[src_slice]
                    .array_mut()
                    .write_row(dst_row + i, &lanes)?;
            } else {
                self.slices[dst_slice]
                    .array_mut()
                    .write_row(dst_row + i, &lanes)?;
            }
        }
        self.ecc_encode(dst_slice, dst_row..dst_row + bits, None);
        // A transient upset on the move path latches one wrong bit in the
        // destination; it persists until the row is overwritten. Under ECC
        // the latched bit disagrees with the freshly-encoded parity, so
        // the *next activation* of that row detects it.
        if let Some(pos) = self.draw_flip((bits * BITLINES) as u64) {
            let row = dst_row + pos as usize / BITLINES;
            let col = pos as usize % BITLINES;
            if let Ok(cur) = self.slices[dst_slice].array().read_bit(row, col) {
                let _ = self.slices[dst_slice].array_mut().write_bit(row, col, !cur);
                if let Some(e) = self.ecc.as_deref_mut() {
                    e.note_mismatch(dst_slice, row, col, cur);
                }
            }
        }
        self.enforce_stuck(dst_slice);
        let skip = (src_slice == dst_slice).then(|| dst_row..dst_row + bits);
        self.ecc_restore(src_slice, &restore, skip);
        self.meter.count_move(1);
        Ok(())
    }

    /// `MAC.C`: inner product of two transposed vectors in one slice;
    /// the scalar result is destined for a core register.
    ///
    /// With no fault plan attached this dispatches to the word-parallel
    /// [`CmemSlice::mac_fast`] host shortcut; with a plan attached it runs
    /// the activation-accurate [`CmemSlice::mac`] loop so per-activation
    /// fault semantics are preserved. Either way the result, the energy
    /// accounting (`count_mac`), and the analytic cycle cost
    /// (`timing::mac_cycles`) are identical.
    ///
    /// # Errors
    ///
    /// Propagates the domain errors of [`CmemSlice::mac`].
    pub fn mac(
        &mut self,
        slice: usize,
        base_a: usize,
        base_b: usize,
        bits: usize,
        signed: bool,
    ) -> Result<i64, SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        // Correct-on-read over both operand row ranges: the activations
        // observe repaired data, the array keeps its faulty cells.
        let span = bits.min(SLICE_ROWS);
        let mut repairs = self.ecc_check(slice, base_a..base_a + span)?;
        repairs.extend(self.ecc_check(slice, base_b..base_b + span)?);
        let restore = self.ecc_apply_repairs(slice, &repairs);
        let result = if self.fault.is_none() {
            self.slices[slice].mac_fast(base_a, base_b, bits, signed)
        } else {
            self.slices[slice].mac(base_a, base_b, bits, signed)
        };
        self.ecc_restore(slice, &restore, None);
        let mut r = result?;
        // Accumulator width: 2·bits product + 8 bits of 256-lane
        // accumulation + sign. An upset flips one bit of that register.
        if let Some(bit) = self.draw_flip_checked((2 * bits + 9) as u64, slice, base_a)? {
            r ^= 1i64 << bit;
        }
        self.meter.count_mac(1);
        Ok(r)
    }

    /// `SetRow.C`: clears or sets one row of one slice.
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    pub fn set_row(&mut self, slice: usize, row: usize, value: bool) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        self.slices[slice].set_row(row, value)?;
        self.ecc_encode(slice, row..row + 1, None);
        self.enforce_stuck(slice);
        self.meter.count_set_row(1);
        Ok(())
    }

    /// `ShiftRow.C`: shifts one row by `granules × 32` bit-lines.
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    pub fn shift_row(
        &mut self,
        slice: usize,
        row: usize,
        dir: ShiftDir,
        granules: usize,
    ) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        // A shift reads then rewrites the row, so any single-bit mismatch
        // is repaired *permanently* here (scrub-on-shift) before the data
        // moves out from under its recorded column.
        let repairs = self.ecc_check(slice, row..row + 1)?;
        let _ = self.ecc_apply_repairs(slice, &repairs);
        self.slices[slice].shift_row(row, dir, granules)?;
        self.ecc_encode(slice, row..row + 1, None);
        self.enforce_stuck(slice);
        self.meter.count_shift_row(1);
        Ok(())
    }

    /// Reads one raw row — the local half of `StoreRow.RC` (the packet body
    /// that `maicc-noc` will carry to another node).
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    pub fn read_row_remote(&mut self, slice: usize, row: usize) -> Result<Vec<u64>, SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        let mut lanes = self.slices[slice].array().read_row(row)?.to_vec();
        // Correct-on-read fixes the packet copy; the array keeps its value.
        for (_, col, intended) in self.ecc_check(slice, row..row + 1)? {
            let word = col / 64;
            let mask = 1u64 << (col % 64);
            if intended {
                lanes[word] |= mask;
            } else {
                lanes[word] &= !mask;
            }
        }
        // Transient upset on the read-out path corrupts the packet copy
        // only; the array keeps its value.
        if let Some(bit) = self.draw_flip_checked(BITLINES as u64, slice, row)? {
            lanes[bit as usize / 64] ^= 1u64 << (bit % 64);
        }
        self.meter.count_remote_row(1);
        Ok(lanes)
    }

    /// Writes one raw row — the local half of `LoadRow.RC` (a row arriving
    /// from another node).
    ///
    /// # Errors
    ///
    /// Propagates slice/row range errors.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not exactly four `u64` words (256 bit-lines).
    pub fn write_row_remote(
        &mut self,
        slice: usize,
        row: usize,
        lanes: &[u64],
    ) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        self.slices[slice].array_mut().write_row(row, lanes)?;
        self.ecc_encode(slice, row..row + 1, None);
        self.enforce_stuck(slice);
        self.meter.count_remote_row(1);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Convenience views used by the execution framework and tests
    // ------------------------------------------------------------------

    /// Writes an unsigned 8-bit vector transposed at (`slice`, `base`).
    ///
    /// # Errors
    ///
    /// Propagates slice/vector range errors.
    pub fn write_vector_u8(&mut self, slice: usize, base: usize, v: &[u8]) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        let words: Vec<u16> = v.iter().map(|&x| x as u16).collect();
        self.slices[slice].write_vector(base, &words, 8)?;
        self.ecc_encode(slice, base..base + 8, None);
        self.enforce_stuck(slice);
        Ok(())
    }

    /// Writes a signed 8-bit vector (two's complement) at (`slice`, `base`).
    ///
    /// # Errors
    ///
    /// Propagates slice/vector range errors.
    pub fn write_vector_i8(&mut self, slice: usize, base: usize, v: &[i8]) -> Result<(), SramError> {
        self.check_slice(slice)?;
        self.check_alive(slice)?;
        let words: Vec<u16> = v.iter().map(|&x| x as u8 as u16).collect();
        self.slices[slice].write_vector(base, &words, 8)?;
        self.ecc_encode(slice, base..base + 8, None);
        self.enforce_stuck(slice);
        Ok(())
    }

    /// Unsigned 8-bit MAC returning the non-negative dot product.
    ///
    /// # Errors
    ///
    /// Propagates the domain errors of [`Self::mac`].
    pub fn mac_u8(&mut self, slice: usize, base_a: usize, base_b: usize) -> Result<u64, SramError> {
        Ok(self.mac(slice, base_a, base_b, 8, false)? as u64)
    }

    /// Signed 8-bit MAC.
    ///
    /// # Errors
    ///
    /// Propagates the domain errors of [`Self::mac`].
    pub fn mac_i8(&mut self, slice: usize, base_a: usize, base_b: usize) -> Result<i64, SramError> {
        self.mac(slice, base_a, base_b, 8, true)
    }

    /// Whether a `MAC.C` on `slice` is a *pure* function of the logical
    /// operand values: no fault plan (no RNG draws, no dead slices, no
    /// latched upsets), no ECC (no check/encode bookkeeping), and the
    /// slice's mask CSR fully open. Under these conditions the bit-plane
    /// dot product equals the direct two's-complement dot product of the
    /// operand vectors, so a caller that shadows the operands in byte
    /// form may compute the result host-side and charge the meter via
    /// [`Cmem::charge_macs`] — the same shortcut ladder as
    /// [`CmemSlice::mac_fast`], one rung further. Callers must fall back
    /// to [`Cmem::mac`] whenever this returns `false`.
    #[must_use]
    pub fn mac_shortcut_ok(&self, slice: usize) -> bool {
        self.fault.is_none()
            && self.ecc.is_none()
            && slice < self.slices.len()
            && self.slices[slice].mask() == 0xFF
    }

    /// Charges the energy meter for `n` externally computed `MAC.C` ops
    /// (the [`Cmem::mac_shortcut_ok`] path). Identical accounting to `n`
    /// calls of [`Cmem::mac`]: one `count_mac` each, nothing else — on
    /// the pristine path `mac` touches no other meter or state.
    pub fn charge_macs(&mut self, n: u64) {
        self.meter.count_mac(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byte_roundtrip_all_addresses_sampled() {
        let mut c = Cmem::new();
        for addr in (0..SLICE0_BYTES).step_by(37) {
            c.store_byte(addr, (addr % 251) as u8).unwrap();
        }
        for addr in (0..SLICE0_BYTES).step_by(37) {
            assert_eq!(c.load_byte(addr).unwrap(), (addr % 251) as u8);
        }
    }

    #[test]
    fn byte_addr_out_of_range() {
        let mut c = Cmem::new();
        assert!(matches!(
            c.store_byte(SLICE0_BYTES, 1),
            Err(SramError::ByteAddrOutOfRange { .. })
        ));
        assert!(matches!(
            c.load_byte(usize::MAX),
            Err(SramError::ByteAddrOutOfRange { .. })
        ));
    }

    #[test]
    fn vertical_write_transposes_for_free() {
        // Bytes 0..256 written vertically appear as a transposed vector in
        // rows 0..8 — the Figure-5 mechanism.
        let mut c = Cmem::new();
        let v: Vec<u8> = (0..=255).collect();
        for (k, &b) in v.iter().enumerate() {
            c.store_byte(k, b).unwrap();
        }
        let read = c.slice(0).unwrap().read_vector(0, 8, 256).unwrap();
        assert_eq!(read, v.iter().map(|&b| b as u16).collect::<Vec<_>>());
    }

    #[test]
    fn second_row_group_maps_to_rows_8_16() {
        let mut c = Cmem::new();
        c.store_byte(256, 0xFF).unwrap();
        let read = c.slice(0).unwrap().read_vector(8, 8, 1).unwrap();
        assert_eq!(read[0], 0xFF);
    }

    #[test]
    fn move_between_slices() {
        let mut c = Cmem::new();
        c.write_vector_u8(0, 0, &[9u8; 256]).unwrap();
        c.move_vector(0, 0, 5, 24, 8).unwrap();
        let got = c.slice(5).unwrap().read_vector(24, 8, 256).unwrap();
        assert!(got.iter().all(|&x| x == 9));
    }

    #[test]
    fn move_within_slice() {
        let mut c = Cmem::new();
        c.write_vector_u8(2, 0, &[5u8; 256]).unwrap();
        c.move_vector(2, 0, 2, 16, 8).unwrap();
        let got = c.slice(2).unwrap().read_vector(16, 8, 256).unwrap();
        assert!(got.iter().all(|&x| x == 5));
    }

    #[test]
    fn mac_after_move_broadcast() {
        // The Algorithm-1 pattern: ifmap enters slice 0, broadcast to the
        // seven computing slices, MAC against resident filters.
        let mut c = Cmem::new();
        let ifmap: Vec<u8> = (0..256).map(|i| (i % 23) as u8).collect();
        c.write_vector_u8(0, 0, &ifmap).unwrap();
        for s in 1..8 {
            c.move_vector(0, 0, s, 0, 8).unwrap();
            let filt: Vec<u8> = (0..256).map(|i| ((i + s) % 11) as u8).collect();
            c.write_vector_u8(s, 8, &filt).unwrap();
            let expect: u64 = ifmap
                .iter()
                .zip(&filt)
                .map(|(&x, &y)| x as u64 * y as u64)
                .sum();
            assert_eq!(c.mac_u8(s, 0, 8).unwrap(), expect);
        }
    }

    #[test]
    fn remote_row_roundtrip() {
        let mut c1 = Cmem::new();
        let mut c2 = Cmem::new();
        c1.write_vector_u8(0, 0, &[7u8; 256]).unwrap();
        // StoreRow.RC from node 1 to node 2, row by row
        for i in 0..8 {
            let lanes = c1.read_row_remote(0, i).unwrap();
            c2.write_row_remote(0, i, &lanes).unwrap();
        }
        assert_eq!(
            c2.slice(0).unwrap().read_vector(0, 8, 256).unwrap(),
            vec![7u16; 256]
        );
        assert_eq!(c1.energy().remote_rows(), 8);
        assert_eq!(c2.energy().remote_rows(), 8);
    }

    #[test]
    fn slice_out_of_range() {
        let mut c = Cmem::new();
        assert!(matches!(
            c.mac(8, 0, 8, 8, false),
            Err(SramError::SliceOutOfRange { slice: 8 })
        ));
        assert!(c.slice(9).is_err());
    }

    #[test]
    fn energy_accounts_each_primitive() {
        let mut c = Cmem::new();
        c.store_byte(0, 1).unwrap();
        c.write_vector_u8(1, 0, &[1u8; 256]).unwrap();
        c.write_vector_u8(1, 8, &[1u8; 256]).unwrap();
        c.mac_u8(1, 0, 8).unwrap();
        c.move_vector(1, 0, 2, 0, 8).unwrap();
        c.set_row(3, 0, true).unwrap();
        c.shift_row(3, 0, ShiftDir::Left, 1).unwrap();
        let pj = c.energy().total_pj();
        let expect = crate::energy::VERTICAL_WRITE_PJ
            + crate::energy::MAC_PJ
            + crate::energy::MOVE_PJ
            + crate::energy::SET_ROW_PJ
            + crate::energy::SHIFT_ROW_PJ;
        assert!((pj - expect).abs() < 1e-9, "{pj} vs {expect}");
    }

    #[test]
    fn reset_energy_zeroes_meter() {
        let mut c = Cmem::new();
        c.store_byte(0, 1).unwrap();
        c.reset_energy();
        assert_eq!(c.energy().total_pj(), 0.0);
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultPlan, StuckAt};

        fn exercise(c: &mut Cmem) -> (Vec<u8>, i64) {
            let ifmap: Vec<i8> = (0..256).map(|i| (i % 17) as i8 - 8).collect();
            let filt: Vec<i8> = (0..256).map(|i| (i % 11) as i8 - 5).collect();
            for (k, &b) in ifmap.iter().enumerate() {
                c.store_byte(k, b as u8).unwrap();
            }
            c.move_vector(0, 0, 4, 0, 8).unwrap();
            c.write_vector_i8(4, 8, &filt).unwrap();
            let mac = c.mac_i8(4, 0, 8).unwrap();
            let bytes: Vec<u8> = (0..256).map(|k| c.load_byte(k).unwrap()).collect();
            (bytes, mac)
        }

        #[test]
        fn quiet_plan_is_bit_identical() {
            let mut clean = Cmem::new();
            let mut quiet = Cmem::with_fault_plan(FaultPlan::none());
            assert_eq!(exercise(&mut clean), exercise(&mut quiet));
            assert_eq!(quiet.fault_stats().total(), 0);
            assert_eq!(quiet.energy().fault_events(), 0);
            // energy totals must match too — the fault path adds nothing
            assert_eq!(clean.energy().total_pj(), quiet.energy().total_pj());
        }

        #[test]
        fn stuck_at_cell_overrides_writes_consistently() {
            // Cell (0, row 0, col 5) stuck at 1: bit 0 of byte 5 always set.
            let mut c = Cmem::with_fault_plan(FaultPlan::none().stuck(0, 0, 5, StuckAt::One));
            c.store_byte(5, 0x00).unwrap();
            assert_eq!(c.load_byte(5).unwrap(), 0x01);
            c.store_byte(5, 0xFE).unwrap();
            assert_eq!(c.load_byte(5).unwrap(), 0xFF);
            assert!(c.fault_stats().stuck_bits_forced >= 2);
            assert_eq!(c.energy().fault_events(), c.fault_stats().total());

            // Stuck-at-0 on the same cell erases the bit instead.
            let mut z = Cmem::with_fault_plan(FaultPlan::none().stuck(0, 0, 5, StuckAt::Zero));
            z.store_byte(5, 0xFF).unwrap();
            assert_eq!(z.load_byte(5).unwrap(), 0xFE);
        }

        #[test]
        fn stuck_cell_poisons_mac_deterministically() {
            // A stuck bit in the filter operand must shift the MAC result
            // the same way every time (no randomness in the permanent path).
            let run = || {
                let mut c =
                    Cmem::with_fault_plan(FaultPlan::none().stuck(2, 8, 0, StuckAt::One));
                c.write_vector_u8(2, 0, &[3u8; 256]).unwrap();
                c.write_vector_u8(2, 8, &[0u8; 256]).unwrap();
                c.mac_u8(2, 0, 8).unwrap()
            };
            // filter lane 0 reads 1 instead of 0 → dot product 3, not 0
            assert_eq!(run(), 3);
            assert_eq!(run(), run());
        }

        #[test]
        fn dead_slice_is_detected_as_typed_error() {
            let mut c = Cmem::with_fault_plan(FaultPlan::none().dead_slice(4));
            c.write_vector_u8(3, 0, &[1u8; 256]).unwrap(); // healthy slice ok
            assert!(matches!(
                c.write_vector_u8(4, 0, &[1u8; 256]),
                Err(SramError::SliceFailed { slice: 4 })
            ));
            assert!(matches!(
                c.mac(4, 0, 8, 8, false),
                Err(SramError::SliceFailed { slice: 4 })
            ));
            assert!(matches!(
                c.move_vector(3, 0, 4, 0, 8),
                Err(SramError::SliceFailed { slice: 4 })
            ));
            assert_eq!(c.fault_stats().dead_slice_hits, 3);
        }

        #[test]
        fn transient_rate_one_flips_exactly_one_mac_bit() {
            let mut clean = Cmem::new();
            let mut noisy = Cmem::with_fault_plan(FaultPlan::with_seed(9).transient(1.0));
            for c in [&mut clean, &mut noisy] {
                c.write_vector_u8(1, 0, &[2u8; 256]).unwrap();
                c.write_vector_u8(1, 8, &[3u8; 256]).unwrap();
            }
            // the vector writes themselves don't draw upsets; the MAC does
            let a = clean.mac(1, 0, 8, 8, false).unwrap();
            let b = noisy.mac(1, 0, 8, 8, false).unwrap();
            assert_eq!((a ^ b).count_ones(), 1, "{a:#x} vs {b:#x}");
            assert_eq!(noisy.fault_stats().transient_flips, 1);
        }

        #[test]
        fn reseed_changes_transient_schedule_deterministically() {
            let draw = |salt: Option<u64>| {
                let mut c = Cmem::with_fault_plan(FaultPlan::with_seed(77).transient(0.25));
                if let Some(s) = salt {
                    c.reseed_fault_rng(s);
                }
                c.write_vector_u8(1, 0, &[2u8; 256]).unwrap();
                c.write_vector_u8(1, 8, &[3u8; 256]).unwrap();
                (0..16).map(|_| c.mac_u8(1, 0, 8).unwrap()).collect::<Vec<_>>()
            };
            assert_eq!(draw(None), draw(None));
            assert_eq!(draw(Some(1)), draw(Some(1)));
            assert_ne!(draw(None), draw(Some(1)));
            // reseeding without a plan is a no-op
            let mut bare = Cmem::new();
            bare.reseed_fault_rng(5);
            assert!(bare.fault_plan().is_none());
        }

        #[test]
        fn detach_returns_stats_and_silences_injection() {
            let mut c = Cmem::with_fault_plan(FaultPlan::with_seed(1).transient(1.0));
            c.write_vector_u8(1, 0, &[1u8; 256]).unwrap();
            c.write_vector_u8(1, 8, &[1u8; 256]).unwrap();
            c.mac_u8(1, 0, 8).unwrap();
            let stats = c.detach_fault_plan();
            assert_eq!(stats.transient_flips, 1);
            assert!(c.fault_plan().is_none());
            assert_eq!(c.mac_u8(1, 0, 8).unwrap(), 256);
        }
    }

    mod ecc {
        use super::*;
        use crate::ecc::EccMode;
        use crate::fault::{FaultPlan, StuckAt};

        fn exercise(c: &mut Cmem) -> (Vec<u8>, i64) {
            let ifmap: Vec<i8> = (0..256).map(|i| (i % 17) as i8 - 8).collect();
            let filt: Vec<i8> = (0..256).map(|i| (i % 11) as i8 - 5).collect();
            for (k, &b) in ifmap.iter().enumerate() {
                c.store_byte(k, b as u8).unwrap();
            }
            c.move_vector(0, 0, 4, 0, 8).unwrap();
            c.write_vector_i8(4, 8, &filt).unwrap();
            let mac = c.mac_i8(4, 0, 8).unwrap();
            let bytes: Vec<u8> = (0..256).map(|k| c.load_byte(k).unwrap()).collect();
            (bytes, mac)
        }

        #[test]
        fn off_mode_is_bit_identical_and_free() {
            let mut plain = Cmem::new();
            let mut off = Cmem::new();
            off.set_ecc_mode(EccMode::Off);
            assert_eq!(exercise(&mut plain), exercise(&mut off));
            assert_eq!(off.ecc_stats(), crate::ecc::EccStats::default());
            assert_eq!(off.ecc_mode(), EccMode::Off);
            assert_eq!(plain.energy().total_pj(), off.energy().total_pj());
            assert_eq!(plain, off);
        }

        #[test]
        fn correct_mode_on_clean_cmem_matches_values_and_charges_surcharge() {
            let mut plain = Cmem::new();
            let mut prot = Cmem::new();
            prot.set_ecc_mode(EccMode::Correct);
            // Same architectural results...
            assert_eq!(exercise(&mut plain), exercise(&mut prot));
            // ...but the protected run paid for encodes and checks.
            let stats = prot.ecc_stats();
            assert!(stats.encodes > 0);
            assert!(stats.checks > 0);
            assert_eq!(stats.corrected, 0);
            assert!(stats.cycle_surcharge > 0);
            assert!(prot.energy().ecc_pj() > 0.0);
            assert!(prot.energy().total_pj() > plain.energy().total_pj());
        }

        #[test]
        fn correct_mode_absorbs_transient_mac_upsets() {
            let mut clean = Cmem::new();
            let mut prot = Cmem::with_fault_plan(FaultPlan::with_seed(9).transient(1.0));
            prot.set_ecc_mode(EccMode::Correct);
            for c in [&mut clean, &mut prot] {
                c.write_vector_u8(1, 0, &[2u8; 256]).unwrap();
                c.write_vector_u8(1, 8, &[3u8; 256]).unwrap();
            }
            // Rate-1.0 transients would flip a MAC bit; Correct absorbs it.
            assert_eq!(
                clean.mac(1, 0, 8, 8, false).unwrap(),
                prot.mac(1, 0, 8, 8, false).unwrap()
            );
            assert_eq!(prot.fault_stats().transient_flips, 1);
            assert!(prot.ecc_stats().corrected >= 1);
        }

        #[test]
        fn detect_only_surfaces_transient_upsets_as_typed_errors() {
            let mut c = Cmem::with_fault_plan(FaultPlan::with_seed(9).transient(1.0));
            c.set_ecc_mode(EccMode::DetectOnly);
            c.write_vector_u8(1, 0, &[2u8; 256]).unwrap();
            c.write_vector_u8(1, 8, &[3u8; 256]).unwrap();
            assert!(matches!(
                c.mac(1, 0, 8, 8, false),
                Err(SramError::EccUncorrectable { slice: 1, .. })
            ));
            assert_eq!(c.ecc_stats().detected_uncorrectable, 1);
        }

        #[test]
        fn correct_mode_repairs_single_stuck_cell_reads() {
            // Stuck bit 0 of byte 5 at 1: unprotected loads see 0x01,
            // protected loads see the intended 0x00 while the cell itself
            // stays physically stuck.
            let plan = FaultPlan::none().stuck(0, 0, 5, StuckAt::One);
            let mut c = Cmem::with_fault_plan(plan);
            c.set_ecc_mode(EccMode::Correct);
            c.store_byte(5, 0x00).unwrap();
            assert_eq!(c.load_byte(5).unwrap(), 0x00);
            assert!(c.ecc_stats().corrected >= 1);
            assert!(c.fault_stats().stuck_bits_forced >= 1);
            // a re-write whose data agrees with the stuck value clears the
            // mismatch: nothing left to correct
            let before = c.ecc_stats().corrected;
            c.store_byte(5, 0x01).unwrap();
            assert_eq!(c.load_byte(5).unwrap(), 0x01);
            assert_eq!(c.ecc_stats().corrected, before);
        }

        #[test]
        fn correct_mode_repairs_stuck_filter_lane_in_mac() {
            // The same scenario `stuck_cell_poisons_mac_deterministically`
            // proves corrupts the result — under Correct it matches clean.
            let mut c = Cmem::with_fault_plan(FaultPlan::none().stuck(2, 8, 0, StuckAt::One));
            c.set_ecc_mode(EccMode::Correct);
            c.write_vector_u8(2, 0, &[3u8; 256]).unwrap();
            c.write_vector_u8(2, 8, &[0u8; 256]).unwrap();
            assert_eq!(c.mac_u8(2, 0, 8).unwrap(), 0);
            assert!(c.ecc_stats().corrected >= 1);
            // correct-on-read: the array still holds the stuck value, so
            // each further MAC corrects it again
            let corrected = c.ecc_stats().corrected;
            assert_eq!(c.mac_u8(2, 0, 8).unwrap(), 0);
            assert!(c.ecc_stats().corrected > corrected);
        }

        #[test]
        fn two_stuck_cells_in_one_row_are_uncorrectable() {
            let plan = FaultPlan::none()
                .stuck(2, 8, 0, StuckAt::One)
                .stuck(2, 8, 1, StuckAt::One);
            let mut c = Cmem::with_fault_plan(plan);
            c.set_ecc_mode(EccMode::Correct);
            c.write_vector_u8(2, 0, &[3u8; 256]).unwrap();
            c.write_vector_u8(2, 8, &[0u8; 256]).unwrap();
            assert!(matches!(
                c.mac_u8(2, 0, 8),
                Err(SramError::EccUncorrectable { slice: 2, row: 8 })
            ));
            assert_eq!(c.ecc_stats().detected_uncorrectable, 1);
        }

        #[test]
        fn move_carries_corrected_data_and_flags_latched_upsets() {
            // A stuck source cell is corrected in transit: the destination
            // receives the intended data even though the source stays bad.
            let mut c = Cmem::with_fault_plan(FaultPlan::none().stuck(1, 0, 7, StuckAt::One));
            c.set_ecc_mode(EccMode::Correct);
            c.write_vector_u8(1, 0, &[0u8; 256]).unwrap();
            c.move_vector(1, 0, 3, 0, 8).unwrap();
            let dst = c.slice(3).unwrap().read_vector(0, 8, 256).unwrap();
            assert!(dst.iter().all(|&x| x == 0), "stuck bit leaked into move");
            // the source array cell is still physically stuck
            assert!(c.slice(1).unwrap().array().read_bit(0, 7).unwrap());
        }

        #[test]
        fn shift_row_scrubs_single_bit_errors() {
            let mut c = Cmem::with_fault_plan(FaultPlan::none().stuck(3, 0, 0, StuckAt::One));
            c.set_ecc_mode(EccMode::Correct);
            c.set_row(3, 0, false).unwrap();
            // shift repairs permanently, then the write path re-forces the
            // stuck cell and re-records the mismatch — still correctable
            c.shift_row(3, 0, ShiftDir::Left, 1).unwrap();
            let lanes = c.read_row_remote(3, 0).unwrap();
            assert!(lanes.iter().all(|&w| w == 0));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_quiet_plan_never_diverges(
            seed in any::<u64>(),
            data in proptest::collection::vec(any::<u8>(), 256),
        ) {
            // A seeded-but-quiet plan must be indistinguishable from none.
            let mut clean = Cmem::new();
            let mut quiet = Cmem::with_fault_plan(crate::fault::FaultPlan::with_seed(seed));
            for c in [&mut clean, &mut quiet] {
                c.write_vector_u8(6, 0, &data).unwrap();
                c.write_vector_u8(6, 8, &data).unwrap();
            }
            prop_assert_eq!(clean.mac_u8(6, 0, 8).unwrap(), quiet.mac_u8(6, 0, 8).unwrap());
            prop_assert_eq!(quiet.fault_stats().total(), 0);
        }

        #[test]
        fn prop_fast_and_slow_paths_agree_on_value_and_accounting(
            bits in 1usize..=16,
            signed in any::<bool>(),
            mask in any::<u8>(),
            a in proptest::collection::vec(any::<u16>(), 256),
            b in proptest::collection::vec(any::<u16>(), 256),
        ) {
            // A quiet plan forces the bit-serial slow path; no plan takes
            // the word-parallel fast path. Result, energy meter, fault
            // stats, and (analytic) cycle cost must all be identical.
            let mut fast = Cmem::new();
            let mut slow = Cmem::with_fault_plan(crate::fault::FaultPlan::none());
            let trunc: Vec<u16> = a.iter().map(|&x| x & ((1u32 << bits) - 1) as u16).collect();
            let truncb: Vec<u16> = b.iter().map(|&x| x & ((1u32 << bits) - 1) as u16).collect();
            for c in [&mut fast, &mut slow] {
                c.slice_mut(2).unwrap().write_vector(0, &trunc, bits).unwrap();
                c.slice_mut(2).unwrap().write_vector(bits, &truncb, bits).unwrap();
                c.slice_mut(2).unwrap().set_mask(mask);
            }
            prop_assert_eq!(
                fast.mac(2, 0, bits, bits, signed).unwrap(),
                slow.mac(2, 0, bits, bits, signed).unwrap()
            );
            prop_assert_eq!(fast.energy().macs(), slow.energy().macs());
            prop_assert_eq!(fast.energy().total_pj(), slow.energy().total_pj());
            prop_assert_eq!(slow.fault_stats().total(), 0);
            // cycle cost is analytic and path-independent by construction
            prop_assert_eq!(
                crate::timing::mac_cycles(bits),
                crate::slice::CmemSlice::mac_activations(bits)
            );
        }

        #[test]
        fn prop_byte_roundtrip(addr in 0usize..SLICE0_BYTES, v in any::<u8>()) {
            let mut c = Cmem::new();
            c.store_byte(addr, v).unwrap();
            prop_assert_eq!(c.load_byte(addr).unwrap(), v);
        }

        #[test]
        fn prop_signed_mac_through_full_path(
            ifmap in proptest::collection::vec(any::<i8>(), 256),
            filt in proptest::collection::vec(any::<i8>(), 256),
        ) {
            let mut c = Cmem::new();
            c.write_vector_i8(0, 0, &ifmap).unwrap();
            c.move_vector(0, 0, 4, 0, 8).unwrap();
            c.write_vector_i8(4, 8, &filt).unwrap();
            let expect: i64 = ifmap.iter().zip(&filt)
                .map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(c.mac_i8(4, 0, 8).unwrap(), expect);
        }
    }
}
