//! SECDED-style per-row parity protection for CMem slices.
//!
//! Every 256-bit row conceptually carries a (64,57)-Hamming-per-word check
//! field: parity is regenerated whenever a row is (re)written (`Move.C`,
//! `SetRow.C`, vertical byte stores, remote row loads) and checked on every
//! bit-line activation that reads the row (byte loads, `MAC.C` operand
//! activation, `Move.C` source reads, remote row stores).
//!
//! The model does not simulate the check bits themselves; it tracks, per
//! row, the set of cells whose stored value *disagrees* with the parity
//! computed at write time (stuck-at cells forced after a write, transient
//! upsets latched on the move path). On activation:
//!
//! * [`EccMode::DetectOnly`] — any mismatched cell in an activated row
//!   raises [`SramError::EccUncorrectable`]; the operation does not
//!   produce a value. This is the detection trigger for checkpoint/replay.
//! * [`EccMode::Correct`] — a row with exactly **one** mismatched cell is
//!   corrected on the fly (the operation observes the intended value; the
//!   array keeps the faulty one, as real correct-on-read does); two or
//!   more mismatches in one row are detected-uncorrectable.
//! * Transient upsets drawn on read/MAC paths are single-bit by
//!   construction, so `Correct` always absorbs them and `DetectOnly`
//!   always surfaces them.
//!
//! [`EccMode::Off`] (the default) keeps the entire layer out of the way:
//! no bookkeeping, no counters, no cycle or energy surcharge — bit- and
//! cycle-identical to the unprotected model, for both the `mac_fast` host
//! shortcut and the bit-serial path.
//!
//! The cycle surcharge is analytic ([`crate::timing::ecc_check_cycles`]
//! and friends) and accumulated in [`EccStats::cycle_surcharge`]; the
//! energy surcharge flows through the existing
//! [`EnergyMeter`](crate::energy::EnergyMeter) via its ECC counters.
//!
//! [`SramError::EccUncorrectable`]: crate::SramError::EccUncorrectable

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// ECC protection level of a [`Cmem`](crate::cmem::Cmem).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccMode {
    /// No protection: zero bookkeeping, zero surcharge, bit-identical to
    /// the unprotected model.
    #[default]
    Off,
    /// Parity is checked on activation; any mismatch raises
    /// [`SramError::EccUncorrectable`](crate::SramError::EccUncorrectable).
    DetectOnly,
    /// Single-bit errors per row are corrected on the fly; multi-bit
    /// errors are detected-uncorrectable.
    Correct,
}

impl EccMode {
    /// Short human-readable label (used in campaign reports and CLI flags).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EccMode::Off => "off",
            EccMode::DetectOnly => "detect",
            EccMode::Correct => "correct",
        }
    }

    /// `true` for any mode that performs checks.
    #[must_use]
    pub fn is_on(self) -> bool {
        self != EccMode::Off
    }
}

/// Counters of ECC activity on one CMem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccStats {
    /// Read-class operations whose activated rows were checked.
    pub checks: u64,
    /// Write-class operations whose rows had parity regenerated.
    pub encodes: u64,
    /// Single-bit errors corrected on the fly (Correct mode only).
    pub corrected: u64,
    /// Errors detected but not correctable (every detection in DetectOnly
    /// mode; multi-bit-per-row errors in Correct mode).
    pub detected_uncorrectable: u64,
    /// Analytic extra cycles spent encoding/checking/correcting.
    pub cycle_surcharge: u64,
}

impl EccStats {
    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &EccStats) {
        self.checks += other.checks;
        self.encodes += other.encodes;
        self.corrected += other.corrected;
        self.detected_uncorrectable += other.detected_uncorrectable;
        self.cycle_surcharge += other.cycle_surcharge;
    }
}

/// Live ECC state owned by a [`Cmem`](crate::cmem::Cmem) when protection
/// is enabled. `Off` mode keeps the owning `Option` empty so the guard is
/// a single null check on every primitive.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EccState {
    /// Active protection level (never [`EccMode::Off`] while this exists).
    pub(crate) mode: EccMode,
    /// Running counters.
    pub(crate) stats: EccStats,
    /// Per `(slice, row)`: cells whose stored bit disagrees with the
    /// parity computed at the row's last write, as `(col, intended)`.
    pub(crate) mismatches: HashMap<(usize, usize), Vec<(usize, bool)>>,
}

impl EccState {
    pub(crate) fn new(mode: EccMode) -> Self {
        debug_assert!(mode.is_on());
        EccState {
            mode,
            stats: EccStats::default(),
            mismatches: HashMap::new(),
        }
    }

    /// Records that `(slice, row, col)` holds a value the row parity does
    /// not cover; keeps the first record if the cell is already listed.
    pub(crate) fn note_mismatch(&mut self, slice: usize, row: usize, col: usize, intended: bool) {
        let entry = self.mismatches.entry((slice, row)).or_default();
        if !entry.iter().any(|&(c, _)| c == col) {
            entry.push((col, intended));
        }
    }

    /// Parity regenerated over (part of) a row: forget mismatches the
    /// write covered. `col` restricts the clear to one bit-line (vertical
    /// byte stores rewrite a single column of eight rows).
    pub(crate) fn clear_row(&mut self, slice: usize, row: usize, col: Option<usize>) {
        match col {
            None => {
                self.mismatches.remove(&(slice, row));
            }
            Some(c) => {
                if let Some(v) = self.mismatches.get_mut(&(slice, row)) {
                    v.retain(|&(col0, _)| col0 != c);
                    if v.is_empty() {
                        self.mismatches.remove(&(slice, row));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_and_default() {
        assert_eq!(EccMode::default(), EccMode::Off);
        assert!(!EccMode::Off.is_on());
        assert!(EccMode::DetectOnly.is_on());
        assert_eq!(EccMode::Correct.label(), "correct");
    }

    #[test]
    fn stats_merge_adds_every_field() {
        let mut a = EccStats {
            checks: 1,
            encodes: 2,
            corrected: 3,
            detected_uncorrectable: 4,
            cycle_surcharge: 5,
        };
        a.merge(&EccStats {
            checks: 10,
            encodes: 20,
            corrected: 30,
            detected_uncorrectable: 40,
            cycle_surcharge: 50,
        });
        assert_eq!(a.checks, 11);
        assert_eq!(a.encodes, 22);
        assert_eq!(a.corrected, 33);
        assert_eq!(a.detected_uncorrectable, 44);
        assert_eq!(a.cycle_surcharge, 55);
    }

    #[test]
    fn mismatch_bookkeeping_first_record_wins_and_clears() {
        let mut st = EccState::new(EccMode::Correct);
        st.note_mismatch(1, 2, 3, true);
        st.note_mismatch(1, 2, 3, false); // duplicate cell: first wins
        assert_eq!(st.mismatches[&(1, 2)], vec![(3, true)]);
        st.note_mismatch(1, 2, 9, false);
        assert_eq!(st.mismatches[&(1, 2)].len(), 2);
        // column-restricted clear removes only the covered cell
        st.clear_row(1, 2, Some(3));
        assert_eq!(st.mismatches[&(1, 2)], vec![(9, false)]);
        // full-row clear forgets the row
        st.clear_row(1, 2, None);
        assert!(!st.mismatches.contains_key(&(1, 2)));
        // clearing an unknown row is a no-op
        st.clear_row(5, 5, None);
        st.clear_row(5, 5, Some(1));
    }
}
