//! Per-operation energy constants (§5, "System Model") and an accumulator.
//!
//! The paper measures the SRAM array with HSPICE (40 nm, 1.1 V) and scales to
//! 28 nm; the published per-operation energies are reproduced here as
//! constants. [`EnergyMeter`] counts primitive invocations and converts them
//! to picojoules so higher layers (node model, chip model) can report energy
//! without knowing circuit details.

use serde::{Deserialize, Serialize};

/// Energy of one vertical (byte) write into slice 0, in pJ.
pub const VERTICAL_WRITE_PJ: f64 = 4.75;
/// Energy of one `Move.C` (8-bit vector between slices), in pJ.
pub const MOVE_PJ: f64 = 52.75;
/// Energy of one `MAC.C` (8-bit vectors), in pJ.
pub const MAC_PJ: f64 = 28.25;
/// Energy of one remote `LoadRow.RC`/`StoreRow.RC` row transfer, in pJ.
pub const REMOTE_ROW_PJ: f64 = 53.01;
/// Energy of one `SetRow.C` — modelled as a plain row write (half a move).
pub const SET_ROW_PJ: f64 = 3.3;
/// Energy of one `ShiftRow.C` — one row read + one row write.
pub const SHIFT_ROW_PJ: f64 = 6.6;
/// Energy of one single-row activation inside a bit-serial loop, in pJ.
///
/// Derived from the `MAC.C` figure: an 8-bit MAC performs 64 row-pair
/// activations plus adder-tree work for 28.25 pJ, ≈0.44 pJ per activation.
/// Used to price Neural Cache's element-wise loops on equal footing.
pub const ACTIVATION_PJ: f64 = 0.44;
/// Energy of regenerating one row's SECDED check bits at write time, in pJ.
///
/// Modelled as four 64-bit Hamming encoders (one per lane word) at roughly
/// the cost of one extra row activation plus XOR-tree work.
pub const ECC_ENCODE_PJ: f64 = 0.52;
/// Energy of one syndrome check on activation, in pJ (slightly cheaper
/// than encode: the check bits are read alongside the data).
pub const ECC_CHECK_PJ: f64 = 0.36;
/// Energy of steering one corrected bit through the correction mux, in pJ.
pub const ECC_CORRECT_PJ: f64 = 0.21;

/// Counters for every energy-bearing CMem primitive.
///
/// # Example
///
/// ```
/// use maicc_sram::energy::EnergyMeter;
///
/// let mut m = EnergyMeter::new();
/// m.count_mac(10);
/// m.count_move(2);
/// assert!((m.total_pj() - (10.0 * 28.25 + 2.0 * 52.75)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    macs: u64,
    moves: u64,
    vertical_writes: u64,
    set_rows: u64,
    shift_rows: u64,
    remote_rows: u64,
    raw_activations: u64,
    fault_events: u64,
    ecc_encodes: u64,
    ecc_checks: u64,
    ecc_corrections: u64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` `MAC.C` operations.
    pub fn count_mac(&mut self, n: u64) {
        self.macs += n;
    }

    /// Records `n` `Move.C` operations.
    pub fn count_move(&mut self, n: u64) {
        self.moves += n;
    }

    /// Records `n` vertical byte writes into slice 0.
    pub fn count_vertical_write(&mut self, n: u64) {
        self.vertical_writes += n;
    }

    /// Records `n` `SetRow.C` operations.
    pub fn count_set_row(&mut self, n: u64) {
        self.set_rows += n;
    }

    /// Records `n` `ShiftRow.C` operations.
    pub fn count_shift_row(&mut self, n: u64) {
        self.shift_rows += n;
    }

    /// Records `n` remote row transfers (`LoadRow.RC`/`StoreRow.RC`).
    pub fn count_remote_row(&mut self, n: u64) {
        self.remote_rows += n;
    }

    /// Records `n` raw single/multi-row activations (bit-serial loops that
    /// bypass the MAC primitive, e.g. the Neural Cache baseline).
    pub fn count_activation(&mut self, n: u64) {
        self.raw_activations += n;
    }

    /// Records `n` injected fault events (transient upsets, stuck-bit
    /// enforcements, dead-slice rejections).
    ///
    /// Faults carry no energy of their own — they are tallied here so
    /// chip-level reports that already aggregate [`EnergyMeter`]s pick up
    /// fault counts through the same [`merge`](Self::merge) path.
    pub fn count_fault(&mut self, n: u64) {
        self.fault_events += n;
    }

    /// Number of injected fault events recorded so far.
    #[must_use]
    pub fn fault_events(&self) -> u64 {
        self.fault_events
    }

    /// Records `n` ECC parity regenerations (write-class operations).
    pub fn count_ecc_encode(&mut self, n: u64) {
        self.ecc_encodes += n;
    }

    /// Records `n` ECC syndrome checks (read-class operations).
    pub fn count_ecc_check(&mut self, n: u64) {
        self.ecc_checks += n;
    }

    /// Records `n` on-the-fly ECC corrections.
    pub fn count_ecc_correct(&mut self, n: u64) {
        self.ecc_corrections += n;
    }

    /// Total energy spent on ECC encode/check/correct, in picojoules.
    #[must_use]
    pub fn ecc_pj(&self) -> f64 {
        self.ecc_encodes as f64 * ECC_ENCODE_PJ
            + self.ecc_checks as f64 * ECC_CHECK_PJ
            + self.ecc_corrections as f64 * ECC_CORRECT_PJ
    }

    /// Number of `MAC.C` operations recorded so far.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Number of remote row transfers recorded so far.
    #[must_use]
    pub fn remote_rows(&self) -> u64 {
        self.remote_rows
    }

    /// Total accumulated energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.macs as f64 * MAC_PJ
            + self.moves as f64 * MOVE_PJ
            + self.vertical_writes as f64 * VERTICAL_WRITE_PJ
            + self.set_rows as f64 * SET_ROW_PJ
            + self.shift_rows as f64 * SHIFT_ROW_PJ
            + self.remote_rows as f64 * REMOTE_ROW_PJ
            + self.raw_activations as f64 * ACTIVATION_PJ
            + self.ecc_pj()
    }

    /// Total accumulated energy in joules.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Merges another meter's counts into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.macs += other.macs;
        self.moves += other.moves;
        self.vertical_writes += other.vertical_writes;
        self.set_rows += other.set_rows;
        self.shift_rows += other.shift_rows;
        self.remote_rows += other.remote_rows;
        self.raw_activations += other.raw_activations;
        self.fault_events += other.fault_events;
        self.ecc_encodes += other.ecc_encodes;
        self.ecc_checks += other.ecc_checks;
        self.ecc_corrections += other.ecc_corrections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero() {
        assert_eq!(EnergyMeter::new().total_pj(), 0.0);
    }

    #[test]
    fn accumulates_each_category() {
        let mut m = EnergyMeter::new();
        m.count_mac(1);
        m.count_move(1);
        m.count_vertical_write(1);
        m.count_set_row(1);
        m.count_shift_row(1);
        m.count_remote_row(1);
        m.count_activation(1);
        let expect =
            MAC_PJ + MOVE_PJ + VERTICAL_WRITE_PJ + SET_ROW_PJ + SHIFT_ROW_PJ + REMOTE_ROW_PJ
                + ACTIVATION_PJ;
        assert!((m.total_pj() - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = EnergyMeter::new();
        a.count_mac(3);
        let mut b = EnergyMeter::new();
        b.count_mac(4);
        b.count_remote_row(2);
        a.merge(&b);
        assert_eq!(a.macs(), 7);
        assert_eq!(a.remote_rows(), 2);
    }

    #[test]
    fn joules_scale() {
        let mut m = EnergyMeter::new();
        m.count_mac(1);
        assert!((m.total_joules() - MAC_PJ * 1e-12).abs() < 1e-24);
    }
}
