use std::fmt;

/// Errors raised by the SRAM / CMem model.
///
/// Every public fallible operation in this crate returns `Result<_, SramError>`.
/// The variants mirror the hardware's illegal conditions: indexing a word-line
/// or slice that does not exist, or issuing a computing-slice operation that
/// the slice's peripheral logic cannot perform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SramError {
    /// A word-line index was out of range for the array.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of rows in the array.
        rows: usize,
    },
    /// A slice index was outside `0..NUM_SLICES`.
    SliceOutOfRange {
        /// The offending slice index.
        slice: usize,
    },
    /// A byte address into slice 0 was outside its 2 KB window.
    ByteAddrOutOfRange {
        /// The offending byte address.
        addr: usize,
    },
    /// A vector operation would spill past the last word-line of the slice.
    VectorOverflow {
        /// First row of the vector.
        base: usize,
        /// Bit width of the elements.
        bits: usize,
        /// Number of rows in the slice.
        rows: usize,
    },
    /// An operand bit width was not one of the supported 1..=16.
    UnsupportedWidth {
        /// The offending width.
        bits: usize,
    },
    /// The two operands of an in-slice operation overlap in rows.
    OperandOverlap {
        /// First row of operand A.
        a: usize,
        /// First row of operand B.
        b: usize,
        /// Bit width of the elements.
        bits: usize,
    },
    /// A byte-addressed access targeted a computing slice (1–7), which only
    /// supports row indexing (§3.3).
    NotByteAddressable {
        /// The offending slice index.
        slice: usize,
    },
    /// An access targeted a slice marked dead by the attached
    /// [`FaultPlan`](crate::fault::FaultPlan).
    ///
    /// This is the *detection* path of the fault model: the fabric observes
    /// this error and can remap the workload around the failed node.
    SliceFailed {
        /// The dead slice index.
        slice: usize,
    },
    /// The per-row ECC check found an error it could not correct: any
    /// mismatch under [`EccMode::DetectOnly`](crate::ecc::EccMode), or a
    /// multi-bit-per-row error under
    /// [`EccMode::Correct`](crate::ecc::EccMode).
    ///
    /// Like [`SramError::SliceFailed`] this is a *detected* fault: the
    /// fabric can roll back to a checkpoint and replay instead of
    /// silently corrupting data.
    EccUncorrectable {
        /// Slice holding the offending row.
        slice: usize,
        /// The activated row whose parity check failed.
        row: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::RowOutOfRange { row, rows } => {
                write!(f, "word-line {row} out of range for {rows}-row array")
            }
            SramError::SliceOutOfRange { slice } => {
                write!(f, "slice {slice} out of range for 8-slice CMem")
            }
            SramError::ByteAddrOutOfRange { addr } => {
                write!(f, "byte address {addr:#x} outside slice 0's 2 KB window")
            }
            SramError::VectorOverflow { base, bits, rows } => {
                write!(
                    f,
                    "{bits}-bit vector at row {base} spills past the {rows}-row slice"
                )
            }
            SramError::UnsupportedWidth { bits } => {
                write!(f, "unsupported element width of {bits} bits")
            }
            SramError::OperandOverlap { a, b, bits } => {
                write!(f, "{bits}-bit operands at rows {a} and {b} overlap")
            }
            SramError::NotByteAddressable { slice } => {
                write!(f, "computing slice {slice} is not byte-addressable")
            }
            SramError::SliceFailed { slice } => {
                write!(f, "slice {slice} has failed (dead-slice fault injected)")
            }
            SramError::EccUncorrectable { slice, row } => {
                write!(
                    f,
                    "uncorrectable ECC error in slice {slice}, row {row} (detected on activation)"
                )
            }
        }
    }
}

impl std::error::Error for SramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            SramError::RowOutOfRange { row: 70, rows: 64 },
            SramError::SliceOutOfRange { slice: 9 },
            SramError::ByteAddrOutOfRange { addr: 4096 },
            SramError::VectorOverflow {
                base: 60,
                bits: 8,
                rows: 64,
            },
            SramError::UnsupportedWidth { bits: 33 },
            SramError::OperandOverlap { a: 0, b: 4, bits: 8 },
            SramError::NotByteAddressable { slice: 3 },
            SramError::SliceFailed { slice: 6 },
            SramError::EccUncorrectable { slice: 2, row: 17 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.chars().next().unwrap().is_uppercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SramError>();
    }
}
