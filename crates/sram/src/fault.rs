//! Fault injection for the CMem model: transient bit upsets, stuck-at
//! cells, and dead slices.
//!
//! A [`FaultPlan`] is a *declarative, seeded* description of what is wrong
//! with one node's computing memory. Attaching a plan to a
//! [`Cmem`](crate::cmem::Cmem) makes every read/MAC-class primitive consult
//! it:
//!
//! * **transient upsets** — with probability [`FaultPlan::transient_flip_rate`]
//!   per operation, one bit of the value being read or produced flips
//!   (the array itself is untouched — a soft error in the sense-amp /
//!   adder-tree path);
//! * **stuck-at cells** — enforced *at write time*: a cell that is stuck
//!   cannot hold the written value, so every later read (byte load, MAC,
//!   row transfer) consistently observes the stuck value;
//! * **dead slices** — every access to a listed slice fails with the typed
//!   error [`SramError::SliceFailed`], which is how the surrounding fabric
//!   *detects* the fault and can remap around the node.
//!
//! All paths are off by default: a CMem without a plan — or with
//! [`FaultPlan::none`] attached — performs **zero** extra RNG draws and is
//! bit- and cycle-identical to the unfaulted model (regression-tested here
//! and in `maicc-sim`).
//!
//! Injected events are tallied twice: in the plan-local [`FaultStats`]
//! (what happened, by kind) and in the existing
//! [`EnergyMeter`](crate::energy::EnergyMeter) via its `fault_events`
//! counter, so chip-level energy reports carry fault counts alongside the
//! per-primitive energy totals they already aggregate.

use serde::{Deserialize, Serialize};

use crate::{BITLINES, NUM_SLICES, SLICE_ROWS};

/// Deterministic splitmix64 stream used for fault scheduling.
///
/// Self-contained so the fault model needs no external RNG crate and a
/// given `(seed, workload)` pair always injects the same faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Bernoulli draw.
    ///
    /// `p <= 0` returns `false` **without consuming the stream** — this is
    /// what makes a quiet plan bit-identical to no plan at all.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits: plenty of resolution for fault rates.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// The value a faulty cell is stuck at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StuckAt {
    /// Cell always reads 0.
    Zero,
    /// Cell always reads 1.
    One,
}

/// One permanently faulty SRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckCell {
    /// Slice holding the cell (`0..NUM_SLICES`).
    pub slice: usize,
    /// Word-line of the cell (`0..SLICE_ROWS`).
    pub row: usize,
    /// Bit-line of the cell (`0..BITLINES`).
    pub col: usize,
    /// Which value the cell is stuck at.
    pub value: StuckAt,
}

/// Declarative fault schedule for one CMem.
///
/// Build with the fluent constructors and attach via
/// [`Cmem::attach_fault_plan`](crate::cmem::Cmem::attach_fault_plan):
///
/// ```
/// use maicc_sram::fault::{FaultPlan, StuckAt};
///
/// let plan = FaultPlan::with_seed(7)
///     .transient(1e-3)
///     .stuck(3, 8, 17, StuckAt::One)
///     .dead_slice(6);
/// assert!(!plan.is_quiet());
/// assert!(FaultPlan::none().is_quiet());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the plan's private RNG stream.
    pub seed: u64,
    /// Per-operation probability of a single-bit transient upset.
    pub transient_flip_rate: f64,
    /// Permanently faulty cells, enforced at write time.
    pub stuck_cells: Vec<StuckCell>,
    /// Slices whose every access fails with [`SramError::SliceFailed`].
    ///
    /// [`SramError::SliceFailed`]: crate::SramError::SliceFailed
    pub dead_slices: Vec<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: attaching it changes nothing, bit for bit.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_flip_rate: 0.0,
            stuck_cells: Vec::new(),
            dead_slices: Vec::new(),
        }
    }

    /// Starts an otherwise-empty plan with an RNG seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::none()
        }
    }

    /// Sets the per-operation transient single-bit-flip probability.
    #[must_use]
    pub fn transient(mut self, rate: f64) -> Self {
        self.transient_flip_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Adds one stuck-at cell.
    #[must_use]
    pub fn stuck(mut self, slice: usize, row: usize, col: usize, value: StuckAt) -> Self {
        self.stuck_cells.push(StuckCell {
            slice,
            row,
            col,
            value,
        });
        self
    }

    /// Marks one slice dead.
    #[must_use]
    pub fn dead_slice(mut self, slice: usize) -> Self {
        if !self.dead_slices.contains(&slice) {
            self.dead_slices.push(slice);
        }
        self
    }

    /// Scatters `count` stuck cells uniformly over the whole CMem,
    /// deterministically from this plan's seed (campaign helper).
    #[must_use]
    pub fn scatter_stuck(mut self, count: usize) -> Self {
        let mut rng = FaultRng::new(self.seed.wrapping_mul(0xA24B_AED4_963E_E407));
        for _ in 0..count {
            let slice = rng.below(NUM_SLICES as u64) as usize;
            let row = rng.below(SLICE_ROWS as u64) as usize;
            let col = rng.below(BITLINES as u64) as usize;
            let value = if rng.next_u64() & 1 == 1 {
                StuckAt::One
            } else {
                StuckAt::Zero
            };
            self.stuck_cells.push(StuckCell {
                slice,
                row,
                col,
                value,
            });
        }
        self
    }

    /// `true` when the plan can never inject anything.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.transient_flip_rate <= 0.0 && self.stuck_cells.is_empty() && self.dead_slices.is_empty()
    }
}

/// Tally of injected fault events, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient single-bit upsets applied to read/MAC results.
    pub transient_flips: u64,
    /// Bits forced by stuck-at enforcement after writes.
    pub stuck_bits_forced: u64,
    /// Accesses rejected because they targeted a dead slice.
    pub dead_slice_hits: u64,
}

impl FaultStats {
    /// Total number of fault events of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.transient_flips + self.stuck_bits_forced + self.dead_slice_hits
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.transient_flips += other.transient_flips;
        self.stuck_bits_forced += other.stuck_bits_forced;
        self.dead_slice_hits += other.dead_slice_hits;
    }
}

/// Live injection state owned by a [`Cmem`](crate::cmem::Cmem) once a plan
/// is attached: the plan, its private RNG stream, and the running tally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultState {
    /// The attached plan.
    pub plan: FaultPlan,
    /// Private RNG stream, seeded from the plan.
    pub rng: FaultRng,
    /// Events injected so far.
    pub stats: FaultStats,
}

impl FaultState {
    /// Builds the live state for a plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let rng = FaultRng::new(plan.seed);
        FaultState {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// `true` if `slice` is configured dead.
    #[must_use]
    pub fn is_dead(&self, slice: usize) -> bool {
        self.plan.dead_slices.contains(&slice)
    }

    /// Draws a transient upset: `Some(bit)` with the plan's flip rate,
    /// where `bit < width`. Consumes no RNG when the rate is zero.
    pub fn draw_flip(&mut self, width: u64) -> Option<u64> {
        if self.rng.chance(self.plan.transient_flip_rate) {
            self.stats.transient_flips += 1;
            Some(self.rng.below(width))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_quiet_at_zero_rate() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
        // chance(0) must not consume the stream
        let before = a.clone();
        assert!(!a.chance(0.0));
        assert_eq!(a, before);
        assert!(a.chance(1.0));
        assert_eq!(a, before, "certain outcomes must not consume either");
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut rng = FaultRng::new(3);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn builder_accumulates_and_quietness_detects() {
        let p = FaultPlan::with_seed(1)
            .transient(0.5)
            .stuck(2, 3, 4, StuckAt::Zero)
            .dead_slice(7)
            .dead_slice(7);
        assert_eq!(p.dead_slices, vec![7]);
        assert_eq!(p.stuck_cells.len(), 1);
        assert!(!p.is_quiet());
        assert!(FaultPlan::none().is_quiet());
        assert!(FaultPlan::with_seed(9).is_quiet());
    }

    #[test]
    fn scatter_is_deterministic_and_in_bounds() {
        let a = FaultPlan::with_seed(11).scatter_stuck(100);
        let b = FaultPlan::with_seed(11).scatter_stuck(100);
        assert_eq!(a, b);
        for c in &a.stuck_cells {
            assert!(c.slice < NUM_SLICES && c.row < SLICE_ROWS && c.col < BITLINES);
        }
        let c = FaultPlan::with_seed(12).scatter_stuck(100);
        assert_ne!(a, c);
    }

    #[test]
    fn draw_flip_counts_and_bounds() {
        let mut st = FaultState::new(FaultPlan::with_seed(5).transient(1.0));
        for _ in 0..100 {
            let bit = st.draw_flip(8).expect("rate 1.0 always flips");
            assert!(bit < 8);
        }
        assert_eq!(st.stats.transient_flips, 100);

        let mut quiet = FaultState::new(FaultPlan::none());
        let before = quiet.clone();
        assert!(quiet.draw_flip(8).is_none());
        assert_eq!(quiet, before, "quiet plan must not consume RNG");
    }

    #[test]
    fn stats_merge_and_total() {
        let mut a = FaultStats {
            transient_flips: 1,
            stuck_bits_forced: 2,
            dead_slice_hits: 3,
        };
        let b = FaultStats {
            transient_flips: 10,
            stuck_bits_forced: 20,
            dead_slice_hits: 30,
        };
        a.merge(&b);
        assert_eq!(a.total(), 66);
    }
}
