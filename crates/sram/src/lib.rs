#![warn(missing_docs)]

//! # maicc-sram — bit-serial in-SRAM computing substrate
//!
//! This crate models the *computing memory* (CMem) at the heart of MAICC
//! (Fan et al., MICRO 2023) at the bit level, together with the published
//! baseline it improves upon (Neural Cache, ISCA 2018).
//!
//! The physical phenomenon being modelled is **bit-line computing**: when two
//! word-lines of an SRAM array are activated simultaneously, the shared
//! bit-line / bit-line-bar pair settles to the `AND` / `NOR` of the two
//! stored bits (Jeloka et al., JSSC 2016). Everything else in this crate —
//! transposed vector layout, bit-serial arithmetic, the CMem's hardware MAC
//! primitive with its adder tree and shift-accumulate register — is built on
//! that single digital abstraction, exposed by [`array::SramArray`].
//!
//! ## Layout of the crate
//!
//! * [`mod@array`] — a word-line/bit-line accurate SRAM array with multi-row
//!   activation.
//! * [`transpose`] — packing n-bit words into the *transposed* (bit-serial)
//!   layout where bit `i` of word `k` lives at row `i`, column `k`.
//! * [`mod@slice`] — one 64×256 CMem slice: row ops, the masked adder tree and
//!   the spatial MAC primitive of Figure 4(b).
//! * [`cmem`] — the full eight-slice CMem of Figure 3(c), including the
//!   byte-addressable transposing slice 0 of Figure 5.
//! * [`neural_cache`] — the element-wise bit-serial primitives (add, multiply,
//!   log-step reduction) of Neural Cache, used as the paper's comparator.
//! * [`timing`] — cycle-cost model for every primitive (Table 2).
//! * [`energy`] — per-operation energy constants from §5 and an accumulator.
//! * [`logic`] — the in-place bit-line logic operations (Compute Caches)
//!   the CMem's slices inherit.
//! * [`fault`] — seeded fault injection (transient upsets, stuck-at cells,
//!   dead slices) for resilience studies; off by default.
//! * [`ecc`] — SECDED-style per-row parity protection
//!   ([`EccMode::{Off,DetectOnly,Correct}`](ecc::EccMode)) with analytic
//!   cycle/energy surcharge; off by default.
//!
//! ## Example
//!
//! ```
//! use maicc_sram::cmem::Cmem;
//!
//! # fn main() -> Result<(), maicc_sram::SramError> {
//! let mut cmem = Cmem::new();
//! // Store two 8-bit vectors transposed into slice 1, rows 0..8 and 8..16.
//! let a: Vec<u8> = (0..256).map(|i| (i % 13) as u8).collect();
//! let b: Vec<u8> = (0..256).map(|i| (i % 7) as u8).collect();
//! cmem.write_vector_u8(1, 0, &a)?;
//! cmem.write_vector_u8(1, 8, &b)?;
//! // One hardware MAC: the dot product appears as a scalar.
//! let mac = cmem.mac_u8(1, 0, 8)?;
//! let expect: u64 = a.iter().zip(&b).map(|(&x, &y)| x as u64 * y as u64).sum();
//! assert_eq!(mac, expect);
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod cmem;
pub mod ecc;
pub mod energy;
pub mod fault;
pub mod logic;
pub mod neural_cache;
pub mod slice;
pub mod timing;
pub mod transpose;

mod error;

pub use error::SramError;

/// Number of bit-lines (columns) in every CMem slice and Neural Cache array.
pub const BITLINES: usize = 256;

/// Number of word-lines (rows) in one CMem slice (2 KB / 256 bit-lines).
pub const SLICE_ROWS: usize = 64;

/// Number of slices in one CMem (Figure 3(c)): slice 0 caches/transposes,
/// slices 1–7 compute.
pub const NUM_SLICES: usize = 8;

/// Number of word-lines in a standard Neural Cache 8 KB array.
pub const NC_ROWS: usize = 256;

/// Granularity (in bit-lines) of one mask-CSR bit and of `ShiftRow.C`.
pub const MASK_GRANULE: usize = 32;
