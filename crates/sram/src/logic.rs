//! In-place bit-line logic operations (Compute Caches, HPCA 2017).
//!
//! §2.2 of the MAICC paper traces the CMem's lineage: bit-line computing
//! first provided **logic** operations — activate two word-lines, read
//! `AND`/`NOR` off the bit-line pairs, write the result back to a third
//! row. The CMem keeps this capability (its slices are ordinary bit-line
//! computing arrays plus the MAC peripherals), and the execution framework
//! uses it for masks and predicates. This module implements the classic
//! in-place row operations over any [`SramArray`], each costing one
//! activation plus one write-back (2 cycles).

use crate::array::SramArray;
use crate::SramError;

/// A two-operand bit-line logic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOp {
    /// Per-bit-line AND (read directly from BL).
    And,
    /// Per-bit-line NOR (read directly from BLB).
    Nor,
    /// Per-bit-line OR (complement of NOR).
    Or,
    /// Per-bit-line XOR (`!(AND | NOR)`).
    Xor,
    /// Per-bit-line NAND (complement of AND).
    Nand,
}

/// Cycles for one in-place logic operation: a multi-row activation plus a
/// write-back.
pub const ROW_OP_CYCLES: u64 = 2;

/// Computes `dst = op(row_a, row_b)` in place, using only what the
/// bit-lines provide plus the sense-amplifier complementing the Compute
/// Caches peripherals add.
///
/// # Errors
///
/// Propagates [`SramError::RowOutOfRange`] /
/// [`SramError::OperandOverlap`] from the underlying array.
pub fn row_op(
    array: &mut SramArray,
    op: RowOp,
    row_a: usize,
    row_b: usize,
    dst: usize,
) -> Result<(), SramError> {
    let readout = array.activate_pair(row_a, row_b)?;
    let lanes: Vec<u64> = match op {
        RowOp::And => readout.and.to_vec(),
        RowOp::Nor => readout.nor.to_vec(),
        RowOp::Or => readout.nor.iter().map(|&n| !n).collect(),
        RowOp::Xor => readout.xor().to_vec(),
        RowOp::Nand => readout.and.iter().map(|&a| !a).collect(),
    };
    array.write_row(dst, &lanes)
}

/// Computes `dst = !src` (single-row activation, sense from BLB).
///
/// # Errors
///
/// Propagates [`SramError::RowOutOfRange`].
pub fn row_not(array: &mut SramArray, src: usize, dst: usize) -> Result<(), SramError> {
    let lanes: Vec<u64> = array.read_row(src)?.iter().map(|&l| !l).collect();
    array.write_row(dst, &lanes)
}

/// Bit-line equality search: returns a bit-line mask of the columns where
/// rows `row_a` and `row_b` agree — the TCAM-style lookup of Jeloka et al.
///
/// # Errors
///
/// Propagates the underlying array errors.
pub fn row_match(array: &SramArray, row_a: usize, row_b: usize) -> Result<Vec<u64>, SramError> {
    let readout = array.activate_pair(row_a, row_b)?;
    // equal bits are those where XOR is 0
    Ok(readout.xor().iter().map(|&x| !x).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arr_with(a: u64, b: u64) -> SramArray {
        let mut arr = SramArray::new(8, 64);
        arr.write_row(0, &[a]).unwrap();
        arr.write_row(1, &[b]).unwrap();
        arr
    }

    #[test]
    fn all_ops_match_boolean_algebra() {
        let (a, b) = (0b1100u64, 0b1010u64);
        for (op, expect) in [
            (RowOp::And, a & b),
            (RowOp::Or, a | b),
            (RowOp::Xor, a ^ b),
            (RowOp::Nor, !(a | b)),
            (RowOp::Nand, !(a & b)),
        ] {
            let mut arr = arr_with(a, b);
            row_op(&mut arr, op, 0, 1, 2).unwrap();
            let got = arr.read_row(2).unwrap()[0];
            // the array masks to its 64 valid columns
            assert_eq!(got, expect, "{op:?}");
        }
    }

    #[test]
    fn not_inverts_within_width() {
        let mut arr = SramArray::new(4, 16);
        arr.write_row(0, &[0b1010]).unwrap();
        row_not(&mut arr, 0, 1).unwrap();
        assert_eq!(arr.read_row(1).unwrap()[0], !0b1010u64 & 0xFFFF);
    }

    #[test]
    fn operands_are_preserved() {
        let mut arr = arr_with(0xF0F0, 0x0FF0);
        row_op(&mut arr, RowOp::Xor, 0, 1, 3).unwrap();
        assert_eq!(arr.read_row(0).unwrap()[0], 0xF0F0);
        assert_eq!(arr.read_row(1).unwrap()[0], 0x0FF0);
    }

    #[test]
    fn in_place_overwrite_of_operand_allowed() {
        // writing the result onto one operand is the classic compute-cache
        // idiom (read happens before write-back)
        let mut arr = arr_with(0b1100, 0b1010);
        row_op(&mut arr, RowOp::And, 0, 1, 0).unwrap();
        assert_eq!(arr.read_row(0).unwrap()[0], 0b1000);
    }

    #[test]
    fn match_mask_finds_equal_columns() {
        let mut arr = SramArray::new(4, 8);
        arr.write_row(0, &[0b1100_1010]).unwrap();
        arr.write_row(1, &[0b1010_1010]).unwrap();
        let m = row_match(&arr, 0, 1).unwrap();
        // differing bits are positions 5 and 6
        assert_eq!(m[0] & 0xFF, 0b1001_1111);
    }

    proptest! {
        #[test]
        fn prop_ops_match_u64_semantics(a in any::<u64>(), b in any::<u64>()) {
            for (op, expect) in [
                (RowOp::And, a & b),
                (RowOp::Or, a | b),
                (RowOp::Xor, a ^ b),
                (RowOp::Nor, !(a | b)),
                (RowOp::Nand, !(a & b)),
            ] {
                let mut arr = SramArray::new(4, 64);
                arr.write_row(0, &[a]).unwrap();
                arr.write_row(1, &[b]).unwrap();
                row_op(&mut arr, op, 0, 1, 2).unwrap();
                prop_assert_eq!(arr.read_row(2).unwrap()[0], expect);
            }
        }

        #[test]
        fn prop_demorgan_holds_on_bitlines(a in any::<u64>(), b in any::<u64>()) {
            // NOT(a AND b) == (NOT a) OR (NOT b), computed entirely in-array
            let mut arr = SramArray::new(8, 64);
            arr.write_row(0, &[a]).unwrap();
            arr.write_row(1, &[b]).unwrap();
            row_op(&mut arr, RowOp::Nand, 0, 1, 2).unwrap();
            row_not(&mut arr, 0, 3).unwrap();
            row_not(&mut arr, 1, 4).unwrap();
            row_op(&mut arr, RowOp::Or, 3, 4, 5).unwrap();
            prop_assert_eq!(arr.read_row(2).unwrap(), arr.read_row(5).unwrap());
        }
    }
}
