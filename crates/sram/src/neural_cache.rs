//! Neural Cache baseline (Eckert et al., ISCA 2018), re-implemented from its
//! published primitives.
//!
//! Neural Cache computes **element-wise** and **temporally** (Figure 4(a) of
//! the MAICC paper): a bit-serial multiply of two transposed vectors leaves
//! a vector of products in the array, and a dot product then needs a
//! *reduction* — `log2(elems)` iterations of shift + add — before a scalar
//! exists. MAICC's CMem replaces that whole tail with the spatial MAC
//! primitive; this module exists so the comparison in Table 4 and §6.3 can
//! be regenerated against a faithful model of the prior art.
//!
//! Functional semantics are bit-exact (built on the same [`SramArray`]);
//! cycle counts use the paper's published formulas (`n + 1` for add,
//! `n² + 5n − 2` for multiply).

use crate::array::SramArray;
use crate::energy::EnergyMeter;
use crate::timing;
use crate::transpose;
use crate::{SramError, BITLINES, NC_ROWS};

/// A standard 8 KB Neural Cache array: 256 word-lines × 256 bit-lines,
/// operated bit-serially on transposed vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct NcArray {
    array: SramArray,
    cycles: u64,
    meter: EnergyMeter,
}

impl Default for NcArray {
    fn default() -> Self {
        Self::new()
    }
}

impl NcArray {
    /// Creates a zeroed 256×256 array.
    #[must_use]
    pub fn new() -> Self {
        NcArray {
            array: SramArray::new(NC_ROWS, BITLINES),
            cycles: 0,
            meter: EnergyMeter::new(),
        }
    }

    /// Total cycles consumed by operations so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Accumulated energy meter.
    #[must_use]
    pub fn energy(&self) -> &EnergyMeter {
        &self.meter
    }

    fn check_vec(&self, base: usize, bits: usize) -> Result<(), SramError> {
        if bits == 0 || bits > 40 {
            return Err(SramError::UnsupportedWidth { bits });
        }
        if base + bits > NC_ROWS {
            return Err(SramError::VectorOverflow {
                base,
                bits,
                rows: NC_ROWS,
            });
        }
        Ok(())
    }

    /// Writes a transposed vector of up-to-40-bit words at word-line `base`.
    ///
    /// (40 bits covers the widest intermediates a reduction produces.)
    ///
    /// # Errors
    ///
    /// Returns range/width errors as in [`crate::slice::CmemSlice::write_vector`].
    pub fn write_vector(&mut self, base: usize, words: &[u64], bits: usize) -> Result<(), SramError> {
        self.check_vec(base, bits)?;
        for i in 0..bits {
            let mut plane = vec![0u64; BITLINES / 64];
            for (k, &w) in words.iter().take(BITLINES).enumerate() {
                if (w >> i) & 1 == 1 {
                    plane[k / 64] |= 1 << (k % 64);
                }
            }
            self.array.write_row(base + i, &plane)?;
        }
        Ok(())
    }

    /// Reads back `count` elements of the transposed vector at `base`.
    ///
    /// # Errors
    ///
    /// Returns range/width errors as in [`Self::write_vector`].
    pub fn read_vector(&self, base: usize, bits: usize, count: usize) -> Result<Vec<u64>, SramError> {
        self.check_vec(base, bits)?;
        let mut out = vec![0u64; count];
        for i in 0..bits {
            let row = self.array.read_row(base + i)?;
            for (k, w) in out.iter_mut().enumerate() {
                if transpose::lane_bit(row, k) {
                    *w |= 1 << i;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise bit-serial **addition**: `dst = a + b`, all three
    /// transposed vectors in this array. The destination is `bits + 1` wide.
    ///
    /// Costs `bits + 1` cycles (§2.2).
    ///
    /// # Errors
    ///
    /// Returns range/width errors as in [`Self::write_vector`].
    pub fn add(&mut self, base_a: usize, base_b: usize, dst: usize, bits: usize) -> Result<(), SramError> {
        let a = self.read_vector(base_a, bits, BITLINES)?;
        let b = self.read_vector(base_b, bits, BITLINES)?;
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        self.write_vector(dst, &sum, bits + 1)?;
        let c = timing::nc_add_cycles(bits);
        self.cycles += c;
        self.meter.count_activation(c);
        Ok(())
    }

    /// Element-wise bit-serial **multiplication**: `dst = a * b`, destination
    /// `2 * bits` wide. Costs `bits² + 5·bits − 2` cycles (§2.2).
    ///
    /// # Errors
    ///
    /// Returns range/width errors as in [`Self::write_vector`].
    pub fn mul(&mut self, base_a: usize, base_b: usize, dst: usize, bits: usize) -> Result<(), SramError> {
        let a = self.read_vector(base_a, bits, BITLINES)?;
        let b = self.read_vector(base_b, bits, BITLINES)?;
        let prod: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        self.write_vector(dst, &prod, 2 * bits)?;
        let c = timing::nc_mul_cycles(bits);
        self.cycles += c;
        self.meter.count_activation(c);
        Ok(())
    }

    /// **Reduction**: accumulates all 256 elements of the `bits`-wide vector
    /// at `base` into a single scalar by `log2(256) = 8` iterations of
    /// shift + add (Figure 4(a)), returning the scalar.
    ///
    /// The intermediate width grows one bit per iteration; the scratch
    /// vector is rebuilt in place at `base`.
    ///
    /// # Errors
    ///
    /// Returns range/width errors as in [`Self::write_vector`].
    pub fn reduce(&mut self, base: usize, bits: usize) -> Result<u64, SramError> {
        let mut v = self.read_vector(base, bits, BITLINES)?;
        let mut width = bits;
        let mut len = BITLINES;
        while len > 1 {
            let half = len / 2;
            // shift: bring the upper half under the lower half (a row copy
            // per bit-plane), then an element-wise add of the halves.
            for k in 0..half {
                v[k] += v[k + half];
            }
            len = half;
            let c = width as u64 + timing::nc_add_cycles(width);
            self.cycles += c;
            self.meter.count_activation(c);
            width += 1;
        }
        // write the (now scalar-bearing) vector back for observability
        self.write_vector(base, &v, width.min(40))?;
        Ok(v[0])
    }

    /// Convenience: a full dot product the Neural Cache way —
    /// multiply then reduce. Returns the scalar.
    ///
    /// # Errors
    ///
    /// Returns range/width errors as in [`Self::write_vector`].
    pub fn dot(&mut self, base_a: usize, base_b: usize, scratch: usize, bits: usize) -> Result<u64, SramError> {
        self.mul(base_a, base_b, scratch, bits)?;
        self.reduce(scratch, 2 * bits)
    }
}

/// Cost model of the Table-4 convolution workload executed the Neural Cache
/// way, at node scale.
///
/// A Neural Cache "node" in Table 4 has 40 KB of SRAM — five standard 8 KB
/// arrays. Each array holds one filter (R·S·C = 3·3·256 elements organised
/// as R·S channel vectors) plus the matching ifmap window, so the five
/// filters proceed in parallel and one array's serial schedule bounds the
/// latency:
///
/// * per ofmap pixel: `R·S` bit-serial multiplies, `R·S − 1` accumulating
///   adds (width grows to `2n + log2(R·S)`), one 256-element reduction;
/// * per ofmap pixel: the sliding window admits `S·C` fresh ifmap values
///   whose transposed write costs one vertical write each (CPU-assisted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NcConvCost {
    /// Cycles spent in bit-serial multiplies.
    pub mul_cycles: u64,
    /// Cycles spent accumulating the R·S partial-product vectors.
    pub accum_cycles: u64,
    /// Cycles spent in the log-step reductions.
    pub reduce_cycles: u64,
    /// Cycles spent loading/transposing fresh ifmap window data.
    pub load_cycles: u64,
}

impl NcConvCost {
    /// Evaluates the model for `filters` filters of `r × s × c` applied to an
    /// `h × w × c` ifmap with `bits`-bit precision, on a node with
    /// `arrays` 8 KB arrays.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // the workload tuple of Table 4
    pub fn evaluate(filters: usize, r: usize, s: usize, c: usize, h: usize, w: usize, bits: usize, arrays: usize) -> Self {
        let out_h = h - r + 1;
        let out_w = w - s + 1;
        let pixels = (out_h * out_w) as u64;
        // filters are spread over the arrays; the busiest array is the bound
        let per_array_filters = filters.div_ceil(arrays) as u64;
        let vec_per_pixel = (r * s) as u64 * c.div_ceil(BITLINES) as u64;

        let mul = pixels * per_array_filters * vec_per_pixel * timing::nc_mul_cycles(bits);
        // accumulate R*S product vectors pairwise; width ~ 2n..2n+log2(RS)
        let mut accum = 0u64;
        let mut remaining = vec_per_pixel;
        let mut width = 2 * bits;
        while remaining > 1 {
            let adds = remaining / 2;
            accum += adds * timing::nc_add_cycles(width);
            remaining = remaining.div_ceil(2);
            width += 1;
        }
        let accum = pixels * per_array_filters * accum;
        let reduce = pixels * per_array_filters * timing::nc_reduce_cycles(width, BITLINES.min(c));
        // fresh window data: s new columns of r pixels? The window slides by
        // one, admitting r (rows) * c (channels) fresh values per step; a
        // vertical transposed write is one cycle per value.
        let load = pixels * (r * c) as u64;
        NcConvCost {
            mul_cycles: mul,
            accum_cycles: accum,
            reduce_cycles: reduce,
            load_cycles: load,
        }
    }

    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.mul_cycles + self.accum_cycles + self.reduce_cycles + self.load_cycles
    }

    /// Fraction of compute cycles spent in the reduction tail — the paper
    /// reports ~23 % for Neural Cache.
    #[must_use]
    pub fn reduction_share(&self) -> f64 {
        let compute = self.mul_cycles + self.accum_cycles + self.reduce_cycles;
        self.reduce_cycles as f64 / compute as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_semantics() {
        let mut a = NcArray::new();
        let x: Vec<u64> = (0..256).map(|i| i % 200).collect();
        let y: Vec<u64> = (0..256).map(|i| (i * 3) % 200).collect();
        a.write_vector(0, &x, 8).unwrap();
        a.write_vector(8, &y, 8).unwrap();
        a.add(0, 8, 16, 8).unwrap();
        let sum = a.read_vector(16, 9, 256).unwrap();
        for k in 0..256 {
            assert_eq!(sum[k], x[k] + y[k]);
        }
        assert_eq!(a.cycles(), 9);
    }

    #[test]
    fn mul_semantics_and_cycles() {
        let mut a = NcArray::new();
        let x: Vec<u64> = (0..256).map(|i| i % 256).collect();
        let y: Vec<u64> = (0..256).map(|i| (255 - i) % 256).collect();
        a.write_vector(0, &x, 8).unwrap();
        a.write_vector(8, &y, 8).unwrap();
        a.mul(0, 8, 16, 8).unwrap();
        let prod = a.read_vector(16, 16, 256).unwrap();
        for k in 0..256 {
            assert_eq!(prod[k], x[k] * y[k]);
        }
        assert_eq!(a.cycles(), 102);
    }

    #[test]
    fn reduce_sums_all_elements() {
        let mut a = NcArray::new();
        let x: Vec<u64> = (0..256).collect();
        a.write_vector(0, &x, 9).unwrap();
        let s = a.reduce(0, 9).unwrap();
        assert_eq!(s, (0..256u64).sum::<u64>());
    }

    #[test]
    fn dot_matches_reference() {
        let mut a = NcArray::new();
        let x: Vec<u64> = (0..256).map(|i| (i * 7) % 256).collect();
        let y: Vec<u64> = (0..256).map(|i| (i * 13) % 256).collect();
        a.write_vector(0, &x, 8).unwrap();
        a.write_vector(8, &y, 8).unwrap();
        let d = a.dot(0, 8, 32, 8).unwrap();
        let expect: u64 = x.iter().zip(&y).map(|(&p, &q)| p * q).sum();
        assert_eq!(d, expect);
    }

    #[test]
    fn dot_cycle_count_includes_reduction_tail() {
        let mut a = NcArray::new();
        a.write_vector(0, &[1; 256], 8).unwrap();
        a.write_vector(8, &[1; 256], 8).unwrap();
        a.dot(0, 8, 32, 8).unwrap();
        let expect = timing::nc_mul_cycles(8) + timing::nc_reduce_cycles(16, 256);
        assert_eq!(a.cycles(), expect);
    }

    #[test]
    fn table4_conv_cost_in_expected_band() {
        // 5 filters 3×3×256 on 9×9×256, 8-bit, five 8 KB arrays (40 KB node).
        let cost = NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5);
        let t = cost.total();
        // Paper reports 136,416 cycles; our component model must land within
        // the same order of magnitude and above the MAICC node (~59 k).
        assert!(t > 59_141, "NC should be slower than MAICC node: {t}");
        assert!(t < 400_000, "NC cost blew up: {t}");
    }

    #[test]
    fn reduction_share_near_paper_fraction() {
        let cost = NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5);
        let share = cost.reduction_share();
        assert!(share > 0.10 && share < 0.40, "reduction share {share}");
    }

    #[test]
    fn more_arrays_never_slower() {
        let one = NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 1).total();
        let five = NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5).total();
        assert!(five <= one);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_add_matches(
            x in proptest::collection::vec(0u64..256, 256),
            y in proptest::collection::vec(0u64..256, 256),
        ) {
            let mut a = NcArray::new();
            a.write_vector(0, &x, 8).unwrap();
            a.write_vector(8, &y, 8).unwrap();
            a.add(0, 8, 16, 8).unwrap();
            let sum = a.read_vector(16, 9, 256).unwrap();
            for k in 0..256 {
                prop_assert_eq!(sum[k], x[k] + y[k]);
            }
        }

        #[test]
        fn prop_dot_matches(
            x in proptest::collection::vec(0u64..256, 256),
            y in proptest::collection::vec(0u64..256, 256),
        ) {
            let mut a = NcArray::new();
            a.write_vector(0, &x, 8).unwrap();
            a.write_vector(8, &y, 8).unwrap();
            let d = a.dot(0, 8, 32, 8).unwrap();
            let expect: u64 = x.iter().zip(&y).map(|(&p, &q)| p * q).sum();
            prop_assert_eq!(d, expect);
        }
    }
}
