//! One CMem slice: a 64×256 SRAM array with computing peripherals.
//!
//! Figure 3(c) of the paper partitions the 16 KB CMem into eight slender
//! 2 KB slices so operations in different slices can proceed in parallel.
//! Each slice carries the peripheral circuits of Figure 8: the row decoder
//! able to activate two word-lines at once, a 256-input **adder tree**, a
//! shift/accumulate **Res register**, and an 8-bit **mask CSR** whose bit
//! `g` enables bit-lines `32g..32g+32` (§3.3 — 32 matches the channel
//! granularity of convolutional layers).

use crate::array::{BitlineReadout, SramArray};
use crate::transpose;
use crate::{SramError, BITLINES, MASK_GRANULE, SLICE_ROWS};

/// Direction of a `ShiftRow.C` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// Towards lower bit-line indices.
    Left,
    /// Towards higher bit-line indices.
    Right,
}

/// A single 64-row × 256-bit-line computing slice.
///
/// # Example
///
/// ```
/// use maicc_sram::slice::CmemSlice;
///
/// # fn main() -> Result<(), maicc_sram::SramError> {
/// let mut s = CmemSlice::new();
/// s.write_vector(0, &[3, 4, 5], 8)?;
/// s.write_vector(8, &[10, 20, 30], 8)?;
/// assert_eq!(s.mac(0, 8, 8, false)?, 3 * 10 + 4 * 20 + 5 * 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CmemSlice {
    array: SramArray,
    mask: u8,
}

impl Default for CmemSlice {
    fn default() -> Self {
        Self::new()
    }
}

impl CmemSlice {
    /// Creates a zeroed slice with all bit-lines enabled (`mask = 0xFF`).
    #[must_use]
    pub fn new() -> Self {
        CmemSlice {
            array: SramArray::new(SLICE_ROWS, BITLINES),
            mask: 0xFF,
        }
    }

    /// The slice's mask CSR. Bit `g` enables bit-lines `32g..32g+32`.
    #[must_use]
    pub fn mask(&self) -> u8 {
        self.mask
    }

    /// Writes the mask CSR.
    pub fn set_mask(&mut self, mask: u8) {
        self.mask = mask;
    }

    /// Expands the mask CSR into per-bit-line lanes.
    #[must_use]
    pub fn mask_lanes(&self) -> Vec<u64> {
        self.mask_words().to_vec()
    }

    /// Expands the mask CSR into per-bit-line lanes without allocating.
    #[must_use]
    #[inline]
    pub fn mask_words(&self) -> [u64; BITLINES / 64] {
        let mut lanes = [0u64; BITLINES / 64];
        for g in 0..8 {
            if (self.mask >> g) & 1 == 1 {
                let start = g * MASK_GRANULE;
                lanes[start / 64] |= 0xFFFF_FFFFu64 << (start % 64);
            }
        }
        lanes
    }

    /// Read-only access to the underlying array (for inter-slice moves).
    #[must_use]
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// Mutable access to the underlying array.
    pub fn array_mut(&mut self) -> &mut SramArray {
        &mut self.array
    }

    fn check_vector(&self, base: usize, bits: usize) -> Result<(), SramError> {
        if !(1..=16).contains(&bits) {
            return Err(SramError::UnsupportedWidth { bits });
        }
        if base + bits > SLICE_ROWS {
            return Err(SramError::VectorOverflow {
                base,
                bits,
                rows: SLICE_ROWS,
            });
        }
        Ok(())
    }

    /// Writes a transposed n-bit vector starting at word-line `base`
    /// (bit `i` of element `k` lands at row `base + i`, bit-line `k`).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::VectorOverflow`] if the vector spills past row 63
    /// or [`SramError::UnsupportedWidth`] for widths outside `1..=16`.
    pub fn write_vector(&mut self, base: usize, words: &[u16], bits: usize) -> Result<(), SramError> {
        self.check_vector(base, bits)?;
        for i in 0..bits {
            let plane = transpose::pack_bitplane(words, i, BITLINES);
            self.array.write_row(base + i, &plane)?;
        }
        Ok(())
    }

    /// Reads back `count` elements of the transposed n-bit vector at `base`.
    ///
    /// # Errors
    ///
    /// Same domain as [`Self::write_vector`].
    pub fn read_vector(&self, base: usize, bits: usize, count: usize) -> Result<Vec<u16>, SramError> {
        self.check_vector(base, bits)?;
        let planes: Result<Vec<Vec<u64>>, _> = (0..bits)
            .map(|i| self.array.read_row(base + i).map(<[u64]>::to_vec))
            .collect();
        Ok(transpose::unpack_words(&planes?, bits, count))
    }

    /// `SetRow.C`: fills word-line `row` with all zeros or all ones.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    pub fn set_row(&mut self, row: usize, value: bool) -> Result<(), SramError> {
        self.array.fill_row(row, value)
    }

    /// `ShiftRow.C`: shifts word-line `row` by `granules × 32` bit-lines.
    ///
    /// Vacated positions fill with zero; bits shifted out are lost. Used for
    /// aligning sub-vectors when the channel count is below 256 (§4.1).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    pub fn shift_row(&mut self, row: usize, dir: ShiftDir, granules: usize) -> Result<(), SramError> {
        let lanes = self.array.read_row(row)?.to_vec();
        let n = lanes.len();
        let words32: Vec<u32> = lanes
            .iter()
            .flat_map(|&l| [l as u32, (l >> 32) as u32])
            .collect();
        let total = words32.len();
        let mut shifted = vec![0u32; total];
        for (idx, w) in words32.iter().enumerate() {
            let dst = match dir {
                ShiftDir::Left => idx.checked_sub(granules),
                ShiftDir::Right => {
                    let d = idx + granules;
                    (d < total).then_some(d)
                }
            };
            if let Some(d) = dst {
                shifted[d] = *w;
            }
        }
        let mut out = vec![0u64; n];
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = shifted[2 * i] as u64 | ((shifted[2 * i + 1] as u64) << 32);
        }
        self.array.write_row(row, &out)
    }

    /// The hardware **vector MAC primitive** of Figure 4(b).
    ///
    /// Computes the inner product of the n-bit vectors stored transposed at
    /// word-lines `base_a..base_a+bits` and `base_b..base_b+bits`, restricted
    /// to the bit-lines enabled by the mask CSR. For every row pair `(i, j)`
    /// the slice activates both word-lines, the adder tree sums the 256
    /// bit-line `AND`s, and the partial sum enters the Res register shifted
    /// by `i + j`. When `signed` is true the operands are two's complement
    /// and the most significant bit-plane carries weight `−2^(n−1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::OperandOverlap`] if the two operand row ranges
    /// intersect, plus the domain errors of [`Self::write_vector`].
    pub fn mac(&self, base_a: usize, base_b: usize, bits: usize, signed: bool) -> Result<i64, SramError> {
        self.check_vector(base_a, bits)?;
        self.check_vector(base_b, bits)?;
        let (lo, hi) = if base_a <= base_b {
            (base_a, base_b)
        } else {
            (base_b, base_a)
        };
        if lo + bits > hi {
            return Err(SramError::OperandOverlap {
                a: base_a,
                b: base_b,
                bits,
            });
        }
        let mask = self.mask_words();
        let mut readout = BitlineReadout::scratch(self.array.lanes());
        let mut res: i64 = 0;
        for i in 0..bits {
            for j in 0..bits {
                self.array
                    .activate_pair_into(base_a + i, base_b + j, &mut readout)?;
                let psum = SramArray::popcount_lanes(&readout.and, Some(&mask)) as i64;
                let negative = signed && ((i == bits - 1) ^ (j == bits - 1));
                let term = psum << (i + j);
                res += if negative { -term } else { term };
            }
        }
        Ok(res)
    }

    /// Word-parallel fast path for [`Self::mac`].
    ///
    /// Computes the identical dot product (same validation, same masking,
    /// same signed MSB-plane weighting) by reading each operand bit-plane
    /// once and AND-popcounting whole `u64` lanes, instead of modelling the
    /// `bits²` individual word-line activations. The slice state observed
    /// is the same state the sense amplifiers would observe, so the result
    /// is bit-identical to the bit-serial path by construction.
    ///
    /// Note this is a *host-side* shortcut only: latency and energy are
    /// charged analytically by the caller (see `maicc_sram::timing` and
    /// `Cmem::mac`), so accounting is unchanged. The fast path must not be
    /// used when per-activation fault injection is armed — `Cmem::mac`
    /// falls back to [`Self::mac`] whenever a `FaultPlan` is attached.
    ///
    /// # Errors
    ///
    /// Identical error domain to [`Self::mac`].
    pub fn mac_fast(
        &self,
        base_a: usize,
        base_b: usize,
        bits: usize,
        signed: bool,
    ) -> Result<i64, SramError> {
        self.check_vector(base_a, bits)?;
        self.check_vector(base_b, bits)?;
        let (lo, hi) = if base_a <= base_b {
            (base_a, base_b)
        } else {
            (base_b, base_a)
        };
        if lo + bits > hi {
            return Err(SramError::OperandOverlap {
                a: base_a,
                b: base_b,
                bits,
            });
        }
        let mask = self.mask_words();
        let mut res: i64 = 0;
        for i in 0..bits {
            let plane_a = self.array.read_row(base_a + i)?;
            for j in 0..bits {
                let plane_b = self.array.read_row(base_b + j)?;
                let mut psum: u32 = 0;
                for ((&a, &b), &m) in plane_a.iter().zip(plane_b).zip(&mask) {
                    psum += (a & b & m).count_ones();
                }
                let negative = signed && ((i == bits - 1) ^ (j == bits - 1));
                let term = (psum as i64) << (i + j);
                res += if negative { -term } else { term };
            }
        }
        Ok(res)
    }

    /// Number of row-pair activations a `mac` of this width performs
    /// (the dominant term of its `n²`-cycle latency).
    #[must_use]
    pub const fn mac_activations(bits: usize) -> u64 {
        (bits * bits) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vector_roundtrip() {
        let mut s = CmemSlice::new();
        let v: Vec<u16> = (0..256).map(|i| (i * 7 % 256) as u16).collect();
        s.write_vector(16, &v, 8).unwrap();
        assert_eq!(s.read_vector(16, 8, 256).unwrap(), v);
    }

    #[test]
    fn vector_overflow_rejected() {
        let mut s = CmemSlice::new();
        assert!(matches!(
            s.write_vector(60, &[1, 2], 8),
            Err(SramError::VectorOverflow { .. })
        ));
    }

    #[test]
    fn width_zero_and_too_wide_rejected() {
        let s = CmemSlice::new();
        assert!(matches!(
            s.read_vector(0, 0, 1),
            Err(SramError::UnsupportedWidth { bits: 0 })
        ));
        assert!(matches!(
            s.read_vector(0, 17, 1),
            Err(SramError::UnsupportedWidth { bits: 17 })
        ));
    }

    #[test]
    fn mac_unsigned_dot_product() {
        let mut s = CmemSlice::new();
        let a: Vec<u16> = (0..256).map(|i| (i % 16) as u16).collect();
        let b: Vec<u16> = (0..256).map(|i| ((i * 3) % 16) as u16).collect();
        s.write_vector(0, &a, 8).unwrap();
        s.write_vector(8, &b, 8).unwrap();
        let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(s.mac(0, 8, 8, false).unwrap(), expect);
    }

    #[test]
    fn mac_signed_dot_product() {
        let mut s = CmemSlice::new();
        // values in [-128, 127] encoded two's complement in 8 bits
        let a_signed: Vec<i8> = (0..256).map(|i: i32| (i - 128) as i8).collect();
        let b_signed: Vec<i8> = (0..256).map(|i| ((i * 5) % 256) as u8 as i8).collect();
        let a: Vec<u16> = a_signed.iter().map(|&x| x as u8 as u16).collect();
        let b: Vec<u16> = b_signed.iter().map(|&x| x as u8 as u16).collect();
        s.write_vector(0, &a, 8).unwrap();
        s.write_vector(8, &b, 8).unwrap();
        let expect: i64 = a_signed
            .iter()
            .zip(&b_signed)
            .map(|(&x, &y)| x as i64 * y as i64)
            .sum();
        assert_eq!(s.mac(0, 8, 8, true).unwrap(), expect);
    }

    #[test]
    fn mac_respects_mask() {
        let mut s = CmemSlice::new();
        let a = vec![1u16; 256];
        let b = vec![1u16; 256];
        s.write_vector(0, &a, 8).unwrap();
        s.write_vector(8, &b, 8).unwrap();
        s.set_mask(0b0000_0011); // only bit-lines 0..64
        assert_eq!(s.mac(0, 8, 8, false).unwrap(), 64);
        s.set_mask(0xFF);
        assert_eq!(s.mac(0, 8, 8, false).unwrap(), 256);
    }

    #[test]
    fn mac_overlapping_operands_rejected() {
        let s = CmemSlice::new();
        assert!(matches!(
            s.mac(0, 4, 8, false),
            Err(SramError::OperandOverlap { .. })
        ));
    }

    #[test]
    fn mac_adjacent_operands_allowed() {
        let mut s = CmemSlice::new();
        s.write_vector(0, &[2], 8).unwrap();
        s.write_vector(8, &[21], 8).unwrap();
        assert_eq!(s.mac(0, 8, 8, false).unwrap(), 42);
    }

    #[test]
    fn set_row_then_mac_of_ones() {
        let mut s = CmemSlice::new();
        // vector of all-ones via SetRow on the LSB plane only → value 1 each
        s.set_row(0, true).unwrap();
        for r in 1..8 {
            s.set_row(r, false).unwrap();
        }
        s.write_vector(8, &vec![3u16; 256], 8).unwrap();
        assert_eq!(s.mac(0, 8, 8, false).unwrap(), 3 * 256);
    }

    #[test]
    fn shift_row_right_then_left_roundtrip_loses_edges() {
        let mut s = CmemSlice::new();
        let v: Vec<u16> = (0..256).map(|i| (i % 2) as u16).collect();
        s.write_vector(0, &v, 1).unwrap();
        s.shift_row(0, ShiftDir::Right, 1).unwrap();
        // columns 0..32 now zero
        let shifted = s.read_vector(0, 1, 256).unwrap();
        assert!(shifted[..32].iter().all(|&x| x == 0));
        assert_eq!(shifted[32..64], v[0..32]);
        s.shift_row(0, ShiftDir::Left, 1).unwrap();
        let back = s.read_vector(0, 1, 256).unwrap();
        assert_eq!(back[..224], v[..224]);
        assert!(back[224..].iter().all(|&x| x == 0));
    }

    #[test]
    fn mask_lanes_expansion() {
        let mut s = CmemSlice::new();
        s.set_mask(0b1000_0001);
        let lanes = s.mask_lanes();
        assert_eq!(lanes[0], 0xFFFF_FFFF);
        assert_eq!(lanes[1], 0);
        assert_eq!(lanes[2], 0);
        assert_eq!(lanes[3], 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn mac_activations_is_n_squared() {
        assert_eq!(CmemSlice::mac_activations(8), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_mac_unsigned_matches_reference(
            a in proptest::collection::vec(0u16..256, 256),
            b in proptest::collection::vec(0u16..256, 256),
        ) {
            let mut s = CmemSlice::new();
            s.write_vector(0, &a, 8).unwrap();
            s.write_vector(8, &b, 8).unwrap();
            let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(s.mac(0, 8, 8, false).unwrap(), expect);
        }

        #[test]
        fn prop_mac_signed_matches_reference(
            a in proptest::collection::vec(any::<i8>(), 256),
            b in proptest::collection::vec(any::<i8>(), 256),
        ) {
            let mut s = CmemSlice::new();
            let au: Vec<u16> = a.iter().map(|&x| x as u8 as u16).collect();
            let bu: Vec<u16> = b.iter().map(|&x| x as u8 as u16).collect();
            s.write_vector(0, &au, 8).unwrap();
            s.write_vector(8, &bu, 8).unwrap();
            let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(s.mac(0, 8, 8, true).unwrap(), expect);
        }

        #[test]
        fn prop_mac_4bit(
            a in proptest::collection::vec(0u16..16, 256),
            b in proptest::collection::vec(0u16..16, 256),
        ) {
            let mut s = CmemSlice::new();
            s.write_vector(0, &a, 4).unwrap();
            s.write_vector(4, &b, 4).unwrap();
            let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(s.mac(0, 4, 4, false).unwrap(), expect);
        }

        #[test]
        fn prop_mac_fast_matches_bit_serial(
            bits in 1usize..=16,
            signed in any::<bool>(),
            mask in any::<u8>(),
            a in proptest::collection::vec(any::<u16>(), 256),
            b in proptest::collection::vec(any::<u16>(), 256),
        ) {
            // The fast path must agree with the activation-accurate loop for
            // every width, signedness, mask, and operand pattern.
            let mut s = CmemSlice::new();
            let trunc = |v: &[u16]| -> Vec<u16> {
                v.iter().map(|&x| x & ((1u32 << bits) - 1) as u16).collect()
            };
            s.write_vector(0, &trunc(&a), bits).unwrap();
            s.write_vector(bits, &trunc(&b), bits).unwrap();
            s.set_mask(mask);
            prop_assert_eq!(
                s.mac_fast(0, bits, bits, signed).unwrap(),
                s.mac(0, bits, bits, signed).unwrap()
            );
        }

        #[test]
        fn prop_mask_partitions_sum(
            a in proptest::collection::vec(0u16..256, 256),
            b in proptest::collection::vec(0u16..256, 256),
        ) {
            // MAC over complementary masks must sum to the unmasked MAC.
            let mut s = CmemSlice::new();
            s.write_vector(0, &a, 8).unwrap();
            s.write_vector(8, &b, 8).unwrap();
            s.set_mask(0xFF);
            let full = s.mac(0, 8, 8, false).unwrap();
            s.set_mask(0x0F);
            let lo = s.mac(0, 8, 8, false).unwrap();
            s.set_mask(0xF0);
            let hi = s.mac(0, 8, 8, false).unwrap();
            prop_assert_eq!(lo + hi, full);
        }
    }
}
