//! Cycle-cost model for every CMem and Neural Cache primitive.
//!
//! The costs come straight from the paper: Table 2 for the CMem extension
//! instructions and §2.2 for the Neural Cache element-wise primitives. All
//! functions are `const` so the scheduler in `maicc-core` can evaluate them
//! at compile time of a kernel.

/// Cycles for `MAC.C` on two n-bit vectors in one slice (Table 2: `n²`).
///
/// The three pipeline stages of Figure 4(b) (activate → adder tree →
/// shift/accumulate) overlap, so the `n²` row-pair activations dominate and
/// two cycles drain the pipeline.
#[must_use]
pub const fn mac_cycles(bits: usize) -> u64 {
    (bits * bits) as u64
}

/// Cycles for `Move.C` of an n-bit vector between slices (Table 2: `n`).
#[must_use]
pub const fn move_cycles(bits: usize) -> u64 {
    bits as u64
}

/// Cycles for `SetRow.C` (Table 2: 1).
#[must_use]
pub const fn set_row_cycles() -> u64 {
    1
}

/// Cycles for `ShiftRow.C` (Table 2: 2 — one read, one write).
#[must_use]
pub const fn shift_row_cycles() -> u64 {
    2
}

/// Cycles a remote `LoadRow.RC`/`StoreRow.RC` occupies the *local* CMem
/// (Table 2: 1). NoC transit time is accounted by `maicc-noc`.
#[must_use]
pub const fn remote_row_cycles() -> u64 {
    1
}

/// Extra cycles to regenerate a row's SECDED check bits on a write-class
/// operation (the encoder sits beside the write drivers; one pipeline
/// stage regardless of how many rows the operation touches).
#[must_use]
pub const fn ecc_encode_cycles() -> u64 {
    1
}

/// Extra cycles to compute syndromes for a read-class operation's
/// activated rows (checked in parallel across lanes, one stage).
#[must_use]
pub const fn ecc_check_cycles() -> u64 {
    1
}

/// Extra cycles to steer one corrected bit through the correction mux and
/// re-issue the affected activation.
#[must_use]
pub const fn ecc_correct_cycles() -> u64 {
    2
}

/// Cycles for a Neural Cache bit-serial **addition** of two n-bit vectors
/// (§2.2: `n + 1`).
#[must_use]
pub const fn nc_add_cycles(bits: usize) -> u64 {
    (bits + 1) as u64
}

/// Cycles for a Neural Cache bit-serial **multiplication** of two n-bit
/// vectors (§2.2: `n² + 5n − 2`).
#[must_use]
pub const fn nc_mul_cycles(bits: usize) -> u64 {
    (bits * bits + 5 * bits - 2) as u64
}

/// Cycles for a Neural Cache **reduction** of a 256-element vector of
/// `bits`-wide partial products down to one scalar.
///
/// Neural Cache reduces by `log2(256) = 8` iterations of shift + add
/// (Figure 4(a)). Each iteration shifts one operand into alignment (a
/// word-width copy) and performs a bit-serial add; the operand width grows
/// by one bit per step to hold the carry.
#[must_use]
pub const fn nc_reduce_cycles(bits: usize, elems: usize) -> u64 {
    let mut total = 0u64;
    let mut width = bits;
    let mut remaining = elems;
    while remaining > 1 {
        // shift/copy of `width` rows, then an add of `width`-bit vectors
        total += width as u64 + nc_add_cycles(width);
        width += 1;
        remaining = remaining.div_ceil(2);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_costs() {
        assert_eq!(mac_cycles(8), 64);
        assert_eq!(mac_cycles(16), 256);
        assert_eq!(move_cycles(8), 8);
        assert_eq!(set_row_cycles(), 1);
        assert_eq!(shift_row_cycles(), 2);
        assert_eq!(remote_row_cycles(), 1);
    }

    #[test]
    fn neural_cache_costs_match_paper_formulas() {
        assert_eq!(nc_add_cycles(8), 9);
        assert_eq!(nc_mul_cycles(8), 64 + 40 - 2);
        assert_eq!(nc_mul_cycles(4), 16 + 20 - 2);
    }

    #[test]
    fn reduction_takes_eight_iterations_for_256() {
        // 8 shift+add iterations, widths 8..=15 for 8-bit inputs
        let mut expect = 0u64;
        for w in 8..16u64 {
            expect += w + (w + 1);
        }
        assert_eq!(nc_reduce_cycles(8, 256), expect);
    }

    #[test]
    fn reduction_of_single_element_is_free() {
        assert_eq!(nc_reduce_cycles(8, 1), 0);
    }

    #[test]
    fn mac_beats_elementwise_plus_reduction() {
        // The headline claim of §3.2: the spatial MAC primitive eliminates
        // the ~23% reduction overhead of Neural Cache.
        let maicc = mac_cycles(8);
        let nc = nc_mul_cycles(8) + nc_reduce_cycles(8, 256);
        assert!(maicc < nc);
    }
}
