//! Transposed (bit-serial) data layout helpers.
//!
//! Bit-serial in-SRAM computing stores vectors **transposed**: bit `i` of
//! word `k` lives at word-line `base + i`, bit-line `k` (Figure 2(b)). A
//! whole n-bit vector of up to 256 elements therefore occupies `n`
//! consecutive word-lines, and one multi-row activation touches the same bit
//! position of *all* elements at once.
//!
//! These helpers convert between ordinary `&[u16]`/`&[u8]` element slices and
//! packed row lanes, and are used both by the CMem model and by the Neural
//! Cache baseline.

/// Packs bit `bit` of every element of `words` into row lanes: element `k`
/// contributes its chosen bit at bit-line `k`.
///
/// `cols` is the number of bit-lines (elements beyond `cols` are ignored,
/// missing elements read as zero).
///
/// # Example
///
/// ```
/// let row = maicc_sram::transpose::pack_bitplane(&[1, 2, 3], 1, 64);
/// // bit 1 of 1,2,3 is 0,1,1 → columns 1 and 2 set
/// assert_eq!(row[0], 0b110);
/// ```
#[must_use]
pub fn pack_bitplane(words: &[u16], bit: usize, cols: usize) -> Vec<u64> {
    let lanes = cols.div_ceil(64);
    let mut out = vec![0u64; lanes];
    for (k, &w) in words.iter().take(cols).enumerate() {
        if (w >> bit) & 1 == 1 {
            out[k / 64] |= 1u64 << (k % 64);
        }
    }
    out
}

/// Extracts bit-line `col`'s bit from packed row lanes.
#[must_use]
pub fn lane_bit(lanes: &[u64], col: usize) -> bool {
    (lanes[col / 64] >> (col % 64)) & 1 == 1
}

/// Reassembles `count` n-bit words from `bits` bit-plane rows
/// (`planes[i]` holds bit `i` of every word).
///
/// # Panics
///
/// Panics if `planes.len()` is smaller than `bits`.
#[must_use]
pub fn unpack_words(planes: &[Vec<u64>], bits: usize, count: usize) -> Vec<u16> {
    assert!(planes.len() >= bits, "missing bit planes");
    let mut out = vec![0u16; count];
    for (i, plane) in planes.iter().take(bits).enumerate() {
        for (k, word) in out.iter_mut().enumerate() {
            if lane_bit(plane, k) {
                *word |= 1 << i;
            }
        }
    }
    out
}

/// Convenience: packs all `bits` bit-planes of `words` at once
/// (`result[i]` is the row holding bit `i`).
#[must_use]
pub fn pack_words(words: &[u16], bits: usize, cols: usize) -> Vec<Vec<u64>> {
    (0..bits).map(|i| pack_bitplane(words, i, cols)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_roundtrip_small() {
        let words: Vec<u16> = vec![0, 1, 2, 3, 250, 255];
        let planes = pack_words(&words, 8, 64);
        assert_eq!(unpack_words(&planes, 8, words.len()), words);
    }

    #[test]
    fn missing_elements_read_zero() {
        let planes = pack_words(&[7], 4, 64);
        let out = unpack_words(&planes, 4, 3);
        assert_eq!(out, vec![7, 0, 0]);
    }

    #[test]
    fn elements_beyond_cols_ignored() {
        let words = vec![1u16; 300];
        let plane = pack_bitplane(&words, 0, 256);
        let total: u32 = plane.iter().map(|l| l.count_ones()).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn lane_bit_addresses_across_lanes() {
        let mut lanes = vec![0u64; 4];
        lanes[2] |= 1 << 5; // column 133
        assert!(lane_bit(&lanes, 133));
        assert!(!lane_bit(&lanes, 134));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_u8(words in proptest::collection::vec(0u16..256, 1..256)) {
            let planes = pack_words(&words, 8, 256);
            prop_assert_eq!(unpack_words(&planes, 8, words.len()), words);
        }

        #[test]
        fn prop_roundtrip_u16(words in proptest::collection::vec(any::<u16>(), 1..256)) {
            let planes = pack_words(&words, 16, 256);
            prop_assert_eq!(unpack_words(&planes, 16, words.len()), words);
        }

        #[test]
        fn prop_bitplane_popcount_matches(words in proptest::collection::vec(0u16..256, 1..256), bit in 0usize..8) {
            let plane = pack_bitplane(&words, bit, 256);
            let expect = words.iter().filter(|&&w| (w >> bit) & 1 == 1).count() as u32;
            let got: u32 = plane.iter().map(|l| l.count_ones()).sum();
            prop_assert_eq!(got, expect);
        }
    }
}
