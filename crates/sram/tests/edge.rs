//! Edge-case tests exercising the public SRAM/CMem API at its boundaries.

use maicc_sram::cmem::{Cmem, SLICE0_BYTES};
use maicc_sram::neural_cache::NcArray;
use maicc_sram::slice::{CmemSlice, ShiftDir};

#[test]
fn shift_row_full_width_wipes() {
    let mut s = CmemSlice::new();
    s.write_vector(0, &vec![1u16; 256], 1).unwrap();
    s.shift_row(0, ShiftDir::Right, 8).unwrap();
    assert!(s.read_vector(0, 1, 256).unwrap().iter().all(|&x| x == 0));
}

#[test]
fn shift_by_zero_granules_is_identity() {
    let mut s = CmemSlice::new();
    let v: Vec<u16> = (0..256).map(|i| (i % 2) as u16).collect();
    s.write_vector(3, &v, 1).unwrap();
    s.shift_row(3, ShiftDir::Left, 0).unwrap();
    assert_eq!(s.read_vector(3, 1, 256).unwrap(), v);
}

#[test]
fn zero_mask_macs_to_zero() {
    let mut s = CmemSlice::new();
    s.write_vector(0, &vec![255u16; 256], 8).unwrap();
    s.write_vector(8, &vec![255u16; 256], 8).unwrap();
    s.set_mask(0);
    assert_eq!(s.mac(0, 8, 8, false).unwrap(), 0);
}

#[test]
fn vector_at_last_legal_rows() {
    let mut s = CmemSlice::new();
    s.write_vector(56, &vec![7u16; 256], 8).unwrap();
    assert_eq!(s.read_vector(56, 8, 1).unwrap()[0], 7);
    assert!(s.write_vector(57, &[0u16], 8).is_err());
}

#[test]
fn slice0_last_byte_roundtrips() {
    let mut c = Cmem::new();
    c.store_byte(SLICE0_BYTES - 1, 0xAB).unwrap();
    assert_eq!(c.load_byte(SLICE0_BYTES - 1).unwrap(), 0xAB);
}

#[test]
fn mac_of_extremes_is_exact() {
    // the worst-case signed dot product: 256 × (-128 × -128)
    let mut c = Cmem::new();
    c.write_vector_i8(1, 0, &[-128i8; 256]).unwrap();
    c.write_vector_i8(1, 8, &[-128i8; 256]).unwrap();
    assert_eq!(c.mac_i8(1, 0, 8).unwrap(), 256 * 128 * 128);
    // and the most negative: -128 × 127
    c.write_vector_i8(2, 0, &[-128i8; 256]).unwrap();
    c.write_vector_i8(2, 8, &[127i8; 256]).unwrap();
    assert_eq!(c.mac_i8(2, 0, 8).unwrap(), -(256 * 128 * 127));
}

#[test]
fn nc_array_forty_bit_ceiling() {
    let mut a = NcArray::new();
    assert!(a.write_vector(0, &[1], 41).is_err());
    a.write_vector(0, &[(1u64 << 39) - 1], 40).unwrap();
    assert_eq!(a.read_vector(0, 40, 1).unwrap()[0], (1u64 << 39) - 1);
}

#[test]
fn move_vector_to_same_location_is_identity() {
    let mut c = Cmem::new();
    let v: Vec<u8> = (0..=255).collect();
    c.write_vector_u8(4, 16, &v).unwrap();
    c.move_vector(4, 16, 4, 16, 8).unwrap();
    let got = c.slice(4).unwrap().read_vector(16, 8, 256).unwrap();
    assert_eq!(got, v.iter().map(|&b| b as u16).collect::<Vec<_>>());
}
