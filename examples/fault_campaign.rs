//! A fault-injection campaign over a ResNet-18 segment — reliability as
//! a measurable property.
//!
//! Sweeps CMem transient bit-flips, stuck-at cells, a dead slice, NoC
//! flit drops, and failed compute tiles over the streaming simulator,
//! classifying every run against the golden software model: **masked**
//! (bit-identical output), **SDC** (silent data corruption), **detected**
//! (typed fault error), or **degraded** (lost traffic quiesced early).
//! The zero-fault point is bit- and cycle-identical to the clean model.
//!
//! Run with: `cargo run --release --example fault_campaign`

use maicc::sim::campaign::{FaultCampaign, Outcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = FaultCampaign::resnet18_default(42);
    println!(
        "sweeping {} fault points over a {}-layer ResNet-18 segment...",
        campaign.points.len(),
        campaign.workload.layers.len()
    );
    let report = campaign.run()?;

    println!("clean baseline: {} cycles\n", report.clean_cycles);
    println!(
        "{:<10} {:>6} {:>8} {:>5} {:>8} {:>5}  {:<9} {:>7} {:>8}",
        "flip-rate", "stuck", "dead-sl", "drop", "tiles✝", "seed", "outcome", "faults", "penalty"
    );
    for r in &report.runs {
        let p = &r.point;
        println!(
            "{:<10} {:>6} {:>8} {:>5} {:>8} {:>5}  {:<9} {:>7} {:>8}",
            format!("{:.0e}", p.transient_flip_rate),
            p.stuck_cells,
            p.dead_slice.map_or("-".into(), |d| d.to_string()),
            p.noc_drop_rate,
            p.failed_tiles,
            p.seed,
            r.outcome.label(),
            r.faults_injected,
            r.latency_penalty
                .map_or("-".into(), |l| format!("{l:.3}x")),
        );
        if !r.detail.is_empty() {
            println!("{:<62}↳ {}", "", r.detail);
        }
    }

    println!(
        "\n{} masked / {} sdc / {} detected / {} degraded",
        report.count(Outcome::Masked),
        report.count(Outcome::Sdc),
        report.count(Outcome::Detected),
        report.count(Outcome::Degraded),
    );
    println!("\nJSON report:\n{}", report.to_json());
    Ok(())
}
