//! Mapping explorer — Equation (1) hands-on.
//!
//! For one ResNet-18 layer, sweep the number of computing cores and watch
//! the two terms of the paper's latency model trade off: `T_CMem` falls as
//! filters spread over more cores, while the fixed per-vector costs
//! (receive, forward, handshake) put a floor under the period. The knee of
//! the curve is where the heuristic allocator wants to sit.
//!
//! Run with: `cargo run --release --example mapping_explorer`

use maicc::exec::alloc::{LayerAlloc, LayerCapacity};
use maicc::exec::config::ExecConfig;
use maicc::nn::resnet::resnet18;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = resnet18(1000);
    let shapes = net.shapes([64, 56, 56])?;
    let cfg = ExecConfig::default();

    for name in ["conv2_2", "conv3_2", "conv4_2"] {
        let shape = shapes
            .iter()
            .find(|s| s.name == name)
            .expect("layer exists");
        let cap = LayerCapacity::of(shape);
        let min = cap.min_cores(name)?;
        let max = cap.max_useful_cores().min(209);
        println!(
            "\n{name}: C={} M={} {}x{}  (min {min} cores, useful up to {max})",
            shape.in_c, shape.out_c, shape.kernel_h, shape.kernel_w
        );
        println!(
            "{:>8}{:>12}{:>12}{:>12}{:>14}",
            "cores", "T_CMem", "T_core", "period", "layer (ms)"
        );
        let mut cores = min;
        while cores <= max {
            let t = LayerAlloc::new(shape.clone(), cores).timing(&cfg);
            println!(
                "{:>8}{:>12.0}{:>12.0}{:>12.0}{:>14.3}",
                cores,
                t.t_cmem,
                t.t_core,
                t.period,
                cfg.cycles_to_ms(t.iterations as f64 * t.period)
            );
            cores = (cores * 2).min(max);
            if cores == max && cores != min {
                let t = LayerAlloc::new(shape.clone(), cores).timing(&cfg);
                println!(
                    "{:>8}{:>12.0}{:>12.0}{:>12.0}{:>14.3}",
                    cores,
                    t.t_cmem,
                    t.t_core,
                    t.period,
                    cfg.cycles_to_ms(t.iterations as f64 * t.period)
                );
                break;
            }
        }
    }
    println!(
        "\nDoubling cores halves T_CMem until the fixed streaming costs floor\n\
         the period — exactly why the single-layer strategy (max cores) wastes\n\
         nodes and the heuristic stops at the knee."
    );
    Ok(())
}
