//! Multi-DNN parallel inference — the autonomous-driving scenario of §1:
//! a large perception network and a small auxiliary network sharing one
//! MAICC array, each on its own MIMD partition.
//!
//! Run with: `cargo run --release --example multi_dnn`

use maicc::exec::config::ExecConfig;
use maicc::nn::resnet::{resnet18, tinynet};
use maicc::sim::multi_dnn::parallel_inference;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let perception = resnet18(1000);
    let auxiliary = tinynet(10);
    let cfg = ExecConfig::default();

    // ResNet-18's conv4 stage alone needs 206 nodes, so co-residence with
    // a second model needs the scaled-up array §6.3 argues for.
    for cores in [256, 384] {
        println!("--- array of {cores} cores ---");
        let report = parallel_inference(
            &[(&perception, [64, 56, 56]), (&auxiliary, [32, 32, 32])],
            cores,
            &cfg,
        )?;
        for m in &report.models {
            println!(
                "  {:<10} {:>4} cores  {:>8.3} ms  {:>8.1} samples/s",
                m.name, m.cores, m.latency_ms, m.throughput
            );
        }
        println!(
            "  combined throughput: {:.1} samples/s\n",
            report.combined_throughput
        );
    }

    // three small models — a sensor-fusion stack
    println!("--- three tinynets on the stock 210-core array ---");
    let report = parallel_inference(
        &[
            (&auxiliary, [32, 32, 32]),
            (&auxiliary, [32, 32, 32]),
            (&auxiliary, [32, 32, 32]),
        ],
        210,
        &cfg,
    )?;
    for m in &report.models {
        println!(
            "  {:<10} {:>4} cores  {:>8.3} ms  {:>8.1} samples/s",
            m.name, m.cores, m.latency_ms, m.throughput
        );
    }
    println!(
        "  combined throughput: {:.1} samples/s",
        report.combined_throughput
    );
    Ok(())
}
