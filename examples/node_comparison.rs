//! The Table-4 node comparison, regenerated: a scalar RV32IM core, a MAICC
//! node, and a Neural Cache node all execute the same convolution — five
//! 3×3×256 filters over a 9×9×256 ifmap, 8-bit.
//!
//! Both programmable nodes really *run* (instruction by instruction, with
//! cycle-accurate timing) and their ofmaps are checked against the golden
//! convolution; Neural Cache is evaluated with its published bit-serial
//! cycle formulas.
//!
//! Run with: `cargo run --release --example node_comparison`

use maicc::core::kernels::{CmemConvKernel, ConvWorkload, ScalarConvKernel};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::model::area;
use maicc::sram::neural_cache::NcConvCost;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = ConvWorkload::table4();
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();
    let golden = wl.golden(&ifmap, &weights);

    // --- scalar baseline -------------------------------------------------
    let sk = ScalarConvKernel::new(wl);
    let mut sn = sk.prepare(&ifmap, &weights)?;
    let mut st = Timing::new(PipelineConfig::default());
    sn.run_with(200_000_000, |e| st.on_retire(e))?;
    assert_eq!(sk.read_ofmap(&sn)?, golden);
    let scalar = st.finish();

    // --- MAICC node (statically scheduled program) ------------------------
    let ck = CmemConvKernel::new(wl)?;
    let scheduled = ck.with_program(ck.scheduled_program());
    let mut cn = scheduled.prepare(&ifmap, &weights, 4)?;
    let mut ct = Timing::new(PipelineConfig::default());
    cn.run_with(100_000_000, |e| ct.on_retire(e))?;
    assert_eq!(scheduled.read_ofmap(&cn)?, golden);
    let maicc = ct.finish();
    let maicc_energy = cn.cmem().energy().total_joules()
        + maicc.total_cycles as f64
            * (maicc::model::power::CORE_W + maicc::model::power::CMEM_STATIC_W)
            / 1e9; // node static power at 1 GHz

    // --- Neural Cache (published formulas) --------------------------------
    let nc = NcConvCost::evaluate(5, 3, 3, 256, 9, 9, 8, 5);

    println!("Table 4 — node comparison on the 5×(3×3×256) / 9×9×256 conv\n");
    println!(
        "{:<16}{:>12}{:>12}{:>14}",
        "", "scalar", "MAICC node", "Neural Cache"
    );
    println!(
        "{:<16}{:>12}{:>12}{:>14}",
        "memory (KB)", 20, 20, 40
    );
    println!(
        "{:<16}{:>12.3}{:>12.3}{:>14.3}",
        "area (mm²)",
        area::SCALAR_NODE_MM2,
        area::maicc_node_mm2(),
        area::NEURAL_CACHE_NODE_MM2
    );
    println!(
        "{:<16}{:>12}{:>12}{:>14}",
        "cycles", scalar.total_cycles, maicc.total_cycles, nc.total()
    );
    println!(
        "\nMAICC vs Neural Cache speedup: {:.2}x (paper: 2.3x)",
        nc.total() as f64 / maicc.total_cycles as f64
    );
    println!(
        "MAICC vs scalar speedup:       {:.0}x",
        scalar.total_cycles as f64 / maicc.total_cycles as f64
    );
    println!("MAICC node energy: {:.2} µJ", maicc_energy * 1e6);
    println!(
        "Neural Cache reduction share: {:.0}% of compute cycles (paper: 23%)",
        nc.reduction_share() * 100.0
    );
    Ok(())
}
