# In-cache dot product: two vectors resident in slice 1 (rows 0 and 8)
# are MAC-ed by the CMem while the scalar core scales the result.
#
# Assemble:  maicc asm examples/programs/dot_product.s
# Execute:   maicc run examples/programs/dot_product.s
# (the CMem is zeroed at reset, so a bare run returns 0 in a0 —
#  load vectors first when embedding this in a host program)

    mac.c   a0, s1[0], s1[8], n8    # a0 = <row0 , row8>
    srai    a0, a0, 1               # halve it in the scalar pipeline
    li      a7, 1                   # ecall service 1: print a0
    ecall
    ebreak
