//! Quickstart: the three layers of the MAICC stack in one file.
//!
//! 1. compute a dot product *inside the SRAM* with the raw CMem;
//! 2. run a RISC-V program that uses the CMem extension instructions on
//!    the cycle-accurate node;
//! 3. map ResNet-18 onto the 210-core array and print the headline
//!    latency.
//!
//! Run with: `cargo run --example quickstart`

use maicc::core::node::{Node, NullPort};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::isa::asm::Assembler;
use maicc::isa::inst::{Instruction, VecWidth};
use maicc::isa::reg::Reg;
use maicc::nn::resnet::resnet18;
use maicc::sram::cmem::Cmem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. in-SRAM computing -------------------------------------------
    let mut cmem = Cmem::new();
    let a: Vec<i8> = (0..256).map(|i| (i % 11) as i8 - 5).collect();
    let b: Vec<i8> = (0..256).map(|i| (i % 7) as i8 - 3).collect();
    cmem.write_vector_i8(1, 0, &a)?;
    cmem.write_vector_i8(1, 8, &b)?;
    let dot = cmem.mac_i8(1, 0, 8)?;
    let expect: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
    println!("in-SRAM dot product: {dot} (reference {expect})");
    println!("  energy so far: {:.1} pJ", cmem.energy().total_pj());
    assert_eq!(dot, expect);

    // --- 2. a program on the node ---------------------------------------
    let mut asm = Assembler::new();
    // two MACs on different slices run in parallel; the core sums them
    asm.inst(Instruction::MacC {
        rd: Reg::A0,
        slice: 1,
        row_a: 0,
        row_b: 8,
        width: VecWidth::W8,
    });
    asm.inst(Instruction::MacC {
        rd: Reg::A1,
        slice: 2,
        row_a: 0,
        row_b: 8,
        width: VecWidth::W8,
    });
    asm.inst(Instruction::add(Reg::A2, Reg::A0, Reg::A1));
    asm.inst(Instruction::Ebreak);
    let mut node = Node::new(asm.assemble()?, Box::new(NullPort::default()));
    for s in 1..=2 {
        node.cmem_mut().write_vector_i8(s, 0, &a)?;
        node.cmem_mut().write_vector_i8(s, 8, &b)?;
    }
    let trace = node.run(10_000)?;
    let report = Timing::new(PipelineConfig::default()).replay(&trace);
    println!(
        "node program: a2 = {} in {} cycles (two 64-cycle MACs overlapped)",
        node.reg(Reg::A2) as i32,
        report.total_cycles
    );

    // --- 3. the whole chip ----------------------------------------------
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let run = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg)?;
    println!(
        "ResNet-18 on 210 cores (heuristic mapping): {:.2} ms, {:.0} samples/s",
        run.total_ms(&cfg),
        run.throughput(&cfg)
    );
    Ok(())
}
