//! ResNet-18 layer mapping under the three segmentation strategies —
//! a live regeneration of the paper's Table 6.
//!
//! Run with: `cargo run --release --example resnet18_mapping`

use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::{run_network, IterBreakdown};
use maicc::exec::segment::Strategy;
use maicc::nn::resnet::resnet18;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();

    println!("Table 6 — layer mapping strategies on ResNet-18 (210 cores)\n");
    println!(
        "{:<4}{:<11}{:>14}{:>14}{:>14}",
        "#", "layer", "single-layer", "greedy", "heuristic"
    );

    let runs: Vec<_> = Strategy::ALL
        .iter()
        .map(|&s| run_network(&net, [64, 56, 56], s, &cfg))
        .collect::<Result<_, _>>()?;

    for i in 0..runs[0].layers.len() {
        println!(
            "{:<4}{:<11}{:>14}{:>14}{:>14}",
            i + 1,
            runs[0].layers[i].name,
            format!("{} nodes", runs[0].layers[i].nodes),
            format!("{} nodes", runs[1].layers[i].nodes),
            format!("{} nodes", runs[2].layers[i].nodes),
        );
    }
    println!();
    for (s, r) in Strategy::ALL.iter().zip(&runs) {
        println!(
            "{:?}: total latency {:.3} ms over {} segments",
            s,
            r.total_ms(&cfg),
            r.segments.len()
        );
    }

    // Figure 9: per-iteration breakdown of layer 9 (conv2_4)
    println!("\nFigure 9 — cycle breakdown per iteration, layer conv2_4:");
    for (s, r) in Strategy::ALL.iter().zip(&runs) {
        let b = IterBreakdown::of(&r.layers[8]);
        println!(
            "  {:?}: wait {:.0}, compute {:.0}, recv {:.0}, send-ifmap {:.0}, send-ofmap {:.0}",
            s, b.wait, b.compute, b.recv, b.send_ifmap, b.send_ofmap
        );
    }
    Ok(())
}
