//! Sensor fusion under real-time request streams — §1's motivating
//! scenario, quantified.
//!
//! An autonomous-driving stack runs a perception backbone and two small
//! auxiliary networks side by side. Each sensor fires at its own rate;
//! the deployment must keep every partition's utilization below 1 and its
//! response time within the frame budget.
//!
//! Run with: `cargo run --release --example sensor_fusion`

use maicc::exec::config::ExecConfig;
use maicc::nn::resnet::{tinynet, vgg11};
use maicc::sim::multi_dnn::parallel_inference;
use maicc::sim::workload::evaluate_streams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backbone = vgg11(100); // camera perception
    let radar = tinynet(10); // radar track classifier
    let lidar = tinynet(10); // lidar segment classifier
    let cfg = ExecConfig::default();

    // the VGG backbone's 512-channel layers alone need ~206 nodes, so this
    // stack deploys on the scaled-up 256-core array §6.3 argues for
    let deployment = parallel_inference(
        &[
            (&backbone, [64, 32, 32]),
            (&radar, [32, 32, 32]),
            (&lidar, [32, 32, 32]),
        ],
        256,
        &cfg,
    )?;
    println!("partitioning 256 cores:");
    for m in &deployment.models {
        println!(
            "  {:<10} {:>4} cores  {:>7.3} ms/inference",
            m.name, m.cores, m.latency_ms
        );
    }

    // camera at 30 fps, radar at 100 Hz, lidar at 50 Hz
    let rates = [30.0, 100.0, 50.0];
    let streams = evaluate_streams(&deployment, &rates)?;
    println!("\nsteady state under sensor rates (camera 30 Hz, radar 100 Hz, lidar 50 Hz):");
    for s in &streams.models {
        println!(
            "  {:<10} {:>6.1} req/s  utilization {:>5.1}%  mean response {:>7.3} ms",
            s.name,
            s.rate,
            s.utilization * 100.0,
            s.mean_response_ms
        );
    }
    println!(
        "peak partition utilization: {:.1}%",
        streams.peak_utilization * 100.0
    );

    // push the camera towards saturation to find its capacity
    let cam_capacity = 1e3 / deployment.models[0].latency_ms;
    println!(
        "\ncamera partition capacity: {cam_capacity:.1} inferences/s; at 95% load the \
         mean response becomes:"
    );
    let hot = evaluate_streams(&deployment, &[0.95 * cam_capacity, 100.0, 50.0])?;
    println!(
        "  {:>7.3} ms ({}x the unloaded latency)",
        hot.models[0].mean_response_ms,
        (hot.models[0].mean_response_ms / deployment.models[0].latency_ms).round()
    );
    Ok(())
}
