//! A convolution streamed across the real mesh — §4.2 live.
//!
//! Three chained CONV layers run as node groups on the flit-level NoC:
//! data-collection cores transpose and inject ifmap vectors, computing
//! cores MAC them against filters resident in *bit-level* CMems and
//! forward them down the chain, and completed ofmap values flow to the
//! next layer the moment their windows close. The result is checked
//! bit-exactly against the golden software model.
//!
//! Run with: `cargo run --release --example streaming_conv`

use maicc::sim::stream::{StreamConfig, StreamSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = StreamConfig::two_layer_test();
    println!(
        "streaming {} layers, input {:?}",
        cfg.layers.len(),
        cfg.input.shape()
    );
    let mut sim = StreamSim::new(&cfg)?;
    let result = sim.run(50_000_000)?;

    let golden = cfg.golden();
    assert_eq!(result.ofmap, golden, "hardware must match the golden model");
    println!("ofmap matches the golden model bit-exactly ✓");
    println!("  cycles:          {}", result.cycles);
    println!("  NoC packets:     {}", result.noc.packets_delivered);
    println!("  NoC flit-hops:   {}", result.noc.flit_hops);
    println!(
        "  NoC energy:      {:.1} nJ",
        result.noc.dynamic_pj() / 1e3
    );
    println!("  CMem energy:     {:.1} nJ", result.cmem_pj / 1e3);
    println!(
        "  mean packet lat: {:.1} cycles",
        result.noc.mean_latency()
    );
    Ok(())
}
