//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's bench targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Differences from the real crate:
//!
//! * Measurement is a plain wall-clock mean over a fixed iteration count —
//!   no warm-up analysis, outlier rejection, or HTML reports.
//! * `criterion_main!` only runs the benchmarks when the process is invoked
//!   with a `--bench` argument (as `cargo bench` does). Because the
//!   workspace declares its bench targets with `harness = false`, cargo
//!   still builds and runs them during `cargo test`; exiting early keeps
//!   the test suite fast.

use std::time::Instant;

/// Opaque value sink preventing the optimiser from deleting benched code.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to the bench closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to move lazy initialisation out of the window.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.mean_ns = elapsed / self.iters as f64;
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the iteration count used for each benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints one result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Mirror of criterion's CLI configuration hook; the shim has no CLI.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: usize, f: &mut F) {
    let mut b = Bencher {
        iters: iters as u64,
        mean_ns: 0.0,
    };
    f(&mut b);
    if b.mean_ns >= 1_000_000.0 {
        println!("bench {name:<50} {:>12.3} ms/iter", b.mean_ns / 1_000_000.0);
    } else if b.mean_ns >= 1_000.0 {
        println!("bench {name:<50} {:>12.3} us/iter", b.mean_ns / 1_000.0);
    } else {
        println!("bench {name:<50} {:>12.1} ns/iter", b.mean_ns);
    }
}

/// Should this process actually execute benchmarks?
///
/// `cargo bench` passes `--bench`; `cargo test` (which also runs
/// `harness = false` bench targets) does not.
#[must_use]
pub fn invoked_as_bench() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups (only under `cargo bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::invoked_as_bench() {
                // Running as a `harness = false` test target: nothing to do.
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        // 1 warm-up + 5 timed iterations.
        assert_eq!(ran, 6);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
