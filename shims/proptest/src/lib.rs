//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the subset of proptest the workspace uses: the `proptest!` macro,
//! `prop_assert*` / `prop_assume!` / `prop_oneof!`, `any::<T>()`, integer
//! ranges and tuples as strategies, `Just`, `.prop_map`, and
//! `collection::vec`. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its inputs but is not
//!   minimised.
//! * **Deterministic seeding** — the RNG seed derives from the test name,
//!   so every run explores the same cases (reproducible CI).
//! * `Config::default()` runs 64 cases (`with_cases` is honoured).

pub mod test_runner {
    //! Deterministic RNG, config and case-level error plumbing.

    /// Splitmix64: tiny, deterministic, good-enough mixing for test data.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from an explicit value.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Creates an RNG deterministically seeded from a test name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name keeps distinct tests on distinct streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            self.next_u64() % bound
        }
    }

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another input.
        Reject(String),
        /// A `prop_assert*` failed — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with a message.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree: `generate` produces the
    /// final value directly (no shrinking).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy for heterogeneous collections
        /// (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, object-safe strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over at least one option.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi - lo) as u128;
                    let v = lo + (u128::from(rng.next_u64()) % span) as i128;
                    v as $t
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u128 + 1;
                    let v = lo + (u128::from(rng.next_u64()) % span) as i128;
                    v as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    // 53 mantissa bits of uniformity is plenty for test data.
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let span = f64::from(self.end) - f64::from(self.start);
                    (f64::from(self.start) + unit * span) as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace generates.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-range strategy for `T` (`any::<T>()`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! `vec(element, size)` collection strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span <= 1 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vec of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests (see module docs for differences
/// from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} falsified on case {}: {}", stringify!($name), attempts, msg);
                        }
                    }
                }
                assert!(
                    passed > 0,
                    "property {} rejected every generated case",
                    stringify!($name)
                );
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides equal {:?}", l);
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i32..17), &mut rng);
            assert!((-5..17).contains(&v));
            let u = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 1..30), &mut rng);
            assert!((1..30).contains(&v.len()));
            let w = Strategy::generate(&crate::collection::vec(0u16..4, 256), &mut rng);
            assert_eq!(w.len(), 256);
            assert!(w.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (0u8..4).prop_map(u32::from),
            Just(99u32),
        ];
        let mut rng = TestRng::from_seed(3);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v < 4u32 || v == 99u32);
            saw_just |= v == 99u32;
        }
        assert!(saw_just, "union never picked the second arm");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, v in crate::collection::vec(any::<i8>(), 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(x != 1000); // never rejects
        }
    }
}
