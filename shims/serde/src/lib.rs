//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the minimal surface the workspace uses: the `Serialize` / `Deserialize`
//! marker traits (blanket-implemented for every type) and the matching
//! no-op derive macros re-exported from `serde_derive`.
//!
//! Types that need *actual* serialisation in this workspace implement it
//! explicitly (see `maicc_sim::campaign`'s JSON writer); the derives keep
//! the type-level contract (`#[derive(Serialize, Deserialize)]`) intact so
//! swapping the real serde back in is a one-line Cargo.toml change.

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` with the deserialize marker traits.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` with the serialize marker trait.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    enum Sum {
        _A,
        _B(u8),
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T> {
        _t: T,
    }

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_hold() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Sum>();
        assert_serialize::<Generic<Vec<String>>>();
    }
}
