//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits carry blanket
//! implementations, so the derives have nothing to generate — they exist
//! only so `#[derive(Serialize, Deserialize)]` attributes keep compiling
//! unchanged against the vendored stand-in.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
