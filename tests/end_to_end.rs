//! End-to-end system tests: the full stack from tensors to the mesh.

use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::{run_network, IterBreakdown};
use maicc::exec::segment::Strategy;
use maicc::nn::resnet::{resnet18, tinynet};
use maicc::nn::tensor::Tensor;
use maicc::sim::stream::{StreamConfig, StreamSim};

/// The streaming hardware simulation reproduces the golden network
/// bit-exactly for a fresh (non-test-fixture) layer chain.
#[test]
fn streaming_hardware_matches_software_network() {
    use maicc::nn::quant::Requantizer;
    use maicc::nn::tensor::ConvShape;
    let layer = |in_c: usize, out_c: usize, seed: usize| maicc::nn::layer::ConvLayer {
        shape: ConvShape {
            out_channels: out_c,
            in_channels: in_c,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
        },
        weights: Tensor::from_fn(&[out_c, in_c, 3, 3], |i| {
            (((i[0] * 13 + i[1] * 7 + i[2] * 3 + i[3] + seed) % 9) as i8) - 4
        }),
        bias: (0..out_c).map(|m| (m % 5) as i32 - 2).collect(),
        requant: Requantizer::from_real_multiplier(0.04, 0),
        relu: true,
        pool: None,
    };
    let cfg = StreamConfig {
        layers: vec![layer(24, 10, 1), layer(10, 6, 2)],
        input: Tensor::from_fn(&[24, 9, 9], |i| (((i[0] + i[1] * 5 + i[2] * 2) % 13) as i8) - 6),
    };
    let mut sim = StreamSim::new(&cfg).unwrap();
    let result = sim.run(50_000_000).unwrap();
    assert_eq!(result.ofmap, cfg.golden());
    assert!(result.noc.packets_delivered > 100);
}

/// The Table-6 orderings and Table-7 bands hold end to end.
#[test]
fn evaluation_headlines_hold() {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let single = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &cfg).unwrap();
    let greedy = run_network(&net, [64, 56, 56], Strategy::Greedy, &cfg).unwrap();
    let heuristic = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).unwrap();

    let (s, g, h) = (
        single.total_ms(&cfg),
        greedy.total_ms(&cfg),
        heuristic.total_ms(&cfg),
    );
    // paper: 24.1 / 10.4 / 5.1 ms — require the ordering and loose bands
    assert!(h < g && g < s, "{h} {g} {s}");
    assert!((2.0..10.0).contains(&h), "heuristic {h} ms");
    assert!((15.0..40.0).contains(&s), "single {s} ms");
    // single-layer must be several times worse than heuristic (paper: 4.7×)
    assert!(s / h > 2.5, "ratio {}", s / h);
}

/// Figure 9's message: waiting dominates the thin strategies, compute is
/// stable, and cycles-to-compute shrink with more nodes.
#[test]
fn fig9_breakdown_story() {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let single = run_network(&net, [64, 56, 56], Strategy::SingleLayer, &cfg).unwrap();
    let heuristic = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).unwrap();
    let layer = 8; // conv2_4, the paper's "layer 9"
    let bs = IterBreakdown::of(&single.layers[layer]);
    let bh = IterBreakdown::of(&heuristic.layers[layer]);
    // single-layer assigns max nodes → less compute per core, more waiting
    assert!(bs.compute < bh.compute, "{bs:?} vs {bh:?}");
    assert!(bs.wait > bh.wait, "{bs:?} vs {bh:?}");
    // send costs are stable across strategies (paper's observation)
    let rel = (bs.send_ifmap - bh.send_ifmap).abs() / bh.send_ifmap;
    assert!(rel < 0.5, "{bs:?} vs {bh:?}");
}

/// Quantized inference is deterministic and shape-correct through the
/// whole golden stack (the substrate every hardware check relies on).
#[test]
fn golden_stack_sanity() {
    let net = resnet18(10);
    let input = Tensor::from_fn(&[64, 16, 16], |i| ((i[0] * 3 + i[1] + i[2]) % 17) as i8 - 8);
    let a = net.infer(&input).unwrap();
    let b = net.infer(&input).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.shape(), &[10]);

    let small = tinynet(5);
    let out = small
        .infer(&Tensor::filled(&[32, 12, 12], 2))
        .unwrap();
    assert_eq!(out.shape(), &[5]);
}

/// Inter-layer pipelining hides most of an upstream layer's time
/// (§6.2: "83% of the computation time of layer 12 overlaps with layer 15").
#[test]
fn interlayer_overlap_is_substantial() {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let h = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).unwrap();
    // find a segment with 4+ layers and measure overlap of its first layer
    // against the segment span
    let seg_of_first = h.layers[0].segment;
    let seg_span = h.segments[seg_of_first].latency();
    let first_span = h.layers[0].end - h.segments[seg_of_first].start;
    let overlap = 1.0 - (seg_span - first_span) / seg_span;
    assert!(
        overlap > 0.5,
        "first layer spans {first_span} of segment {seg_span}"
    );
}
