//! Cross-crate integration tests: every seam between subsystems.

use maicc::core::kernels::{CmemConvKernel, ConvWorkload};
use maicc::core::node::{Node, NullPort};
use maicc::core::pipeline::{PipelineConfig, Timing};
use maicc::exec::config::ExecConfig;
use maicc::exec::pipeline_model::run_network;
use maicc::exec::segment::Strategy;
use maicc::isa::decode::decode;
use maicc::isa::encode::encode;
use maicc::model::power::EnergyBreakdown;
use maicc::nn::resnet::resnet18;

/// A program survives encode → decode → execution: binary round-tripping
/// composes with the interpreter.
#[test]
fn encoded_program_executes_identically() {
    use maicc::isa::asm::Assembler;
    use maicc::isa::inst::{BranchKind, Instruction as I};
    use maicc::isa::reg::Reg;

    let mut a = Assembler::new();
    a.inst(I::li(Reg::A0, 12));
    a.inst(I::li(Reg::A1, 0));
    a.label("loop");
    a.inst(I::add(Reg::A1, Reg::A1, Reg::A0));
    a.inst(I::addi(Reg::A0, Reg::A0, -1));
    a.branch(BranchKind::Bne, Reg::A0, Reg::Zero, "loop");
    a.inst(I::Ebreak);
    let program = a.assemble().unwrap();

    // round-trip through the binary encoding
    let recoded: Vec<_> = program
        .iter()
        .map(|i| decode(encode(i)).expect("every emitted instruction encodes legally"))
        .collect();
    assert_eq!(program, recoded);

    let mut n1 = Node::new(program, Box::new(NullPort::default()));
    let mut n2 = Node::new(recoded, Box::new(NullPort::default()));
    n1.run(10_000).unwrap();
    n2.run(10_000).unwrap();
    assert_eq!(n1.reg(Reg::A1), n2.reg(Reg::A1));
    assert_eq!(n1.reg(Reg::A1), (1..=12).sum::<u32>());
}

/// The CMem conv kernel agrees with the golden `maicc-nn` convolution on a
/// non-trivial workload (cross-checking isa + core + sram + nn).
#[test]
fn cmem_kernel_agrees_with_golden_conv() {
    let wl = ConvWorkload {
        filters: 3,
        r: 3,
        s: 3,
        c: 64,
        h: 7,
        w: 7,
    };
    let kernel = CmemConvKernel::new(wl).unwrap();
    let ifmap = wl.synthetic_ifmap();
    let weights = wl.synthetic_weights();
    let mut node = kernel.prepare(&ifmap, &weights, 4).unwrap();
    node.run(50_000_000).unwrap();
    assert_eq!(kernel.read_ofmap(&node).unwrap(), wl.golden(&ifmap, &weights));
}

/// Static scheduling never changes results and never makes timing worse,
/// across several workload shapes.
#[test]
fn scheduling_is_sound_and_profitable_across_shapes() {
    for wl in [
        ConvWorkload::tiny(),
        ConvWorkload {
            filters: 4,
            r: 1,
            s: 1,
            c: 128,
            h: 6,
            w: 6,
        },
        ConvWorkload {
            filters: 2,
            r: 3,
            s: 3,
            c: 32,
            h: 6,
            w: 6,
        },
    ] {
        let kernel = CmemConvKernel::new(wl).unwrap();
        let ifmap = wl.synthetic_ifmap();
        let weights = wl.synthetic_weights();
        let run = |prog: Vec<maicc::isa::inst::Instruction>| {
            let k = kernel.with_program(prog);
            let mut node = k.prepare(&ifmap, &weights, 4).unwrap();
            let mut t = Timing::new(PipelineConfig::default());
            node.run_with(50_000_000, |e| t.on_retire(e)).unwrap();
            (k.read_ofmap(&node).unwrap(), t.finish().total_cycles)
        };
        let (o1, c1) = run(kernel.program().to_vec());
        let (o2, c2) = run(kernel.scheduled_program());
        assert_eq!(o1, o2, "{wl:?}");
        assert!(c2 <= c1, "{wl:?}: scheduled {c2} vs naive {c1}");
        assert_eq!(o1, wl.golden(&ifmap, &weights), "{wl:?}");
    }
}

/// The execution model's counters drive the energy model into the
/// Figure-10(b) regime: DRAM-dominated, ~25 W.
#[test]
fn exec_counters_compose_with_energy_model() {
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let run = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).unwrap();
    let e = EnergyBreakdown::from_counters(&run.counters);
    let power = e.average_power(run.counters.seconds);
    assert!((15.0..40.0).contains(&power), "chip power {power} W");
    let f = e.fractions();
    assert!(f[0] > 0.5, "DRAM should dominate: {f:?}");
}

/// Table 7's headline: MAICC beats the CPU on throughput and both
/// baselines on throughput/W.
#[test]
fn table7_shape_holds() {
    use maicc::model::baselines::{DeviceModel, RESNET18_FULL_MACS};
    let net = resnet18(1000);
    let cfg = ExecConfig::default();
    let run = run_network(&net, [64, 56, 56], Strategy::Heuristic, &cfg).unwrap();
    let e = EnergyBreakdown::from_counters(&run.counters);
    let maicc_tp = run.throughput(&cfg);
    let maicc_tpw = maicc_tp / e.average_power(run.counters.seconds);

    let cpu = DeviceModel::cpu_i9_13900k();
    let gpu = DeviceModel::gpu_rtx_4090();
    let cpu_tp = cpu.throughput(RESNET18_FULL_MACS);
    let gpu_tp = gpu.throughput(RESNET18_FULL_MACS);

    assert!(maicc_tp > 2.0 * cpu_tp, "MAICC {maicc_tp} vs CPU {cpu_tp}");
    assert!(maicc_tp < gpu_tp, "GPU wins raw throughput in the paper too");
    assert!(
        maicc_tpw > gpu.throughput_per_watt(RESNET18_FULL_MACS),
        "MAICC must win throughput/W: {maicc_tpw} vs GPU {}",
        gpu.throughput_per_watt(RESNET18_FULL_MACS)
    );
    assert!(maicc_tpw > 10.0 * cpu.throughput_per_watt(RESNET18_FULL_MACS));
}

/// The NoC, memory system and mapping compose: a zig-zag chain's traffic
/// fits through the mesh with bounded latency.
#[test]
fn mapping_traffic_fits_mesh() {
    use maicc::exec::mapping::place_groups;
    use maicc::noc::{Coord, Mesh, Packet};
    let groups = place_groups(&[13]).unwrap();
    let g = &groups[0];
    let mut mesh: Mesh<u32> = Mesh::new(16, 16);
    // one pixel: 8 row packets DC → first CC, then forwarded down the chain
    let mut prev = Coord::new(g.dc.x, g.dc.y);
    for t in std::iter::once(&g.computing[0]).chain(&g.computing[1..]) {
        let next = Coord::new(t.x, t.y);
        for _ in 0..8 {
            mesh.send(Packet::new(prev, next, 9, 0));
        }
        prev = next;
    }
    let delivered = mesh.run_until_idle(100_000);
    assert_eq!(delivered.len(), 8 * 13);
    // adjacent hops: mean latency stays near the serialization bound
    assert!(mesh.stats().mean_latency() < 200.0);
}

/// Memory system feeds the model constants used by exec counters.
#[test]
fn memory_energy_constants_are_consistent() {
    use maicc::mem::dram::{ACTIVATE_PJ, READ_PJ};
    use maicc::mem::system::MemorySystem;
    let mut m = MemorySystem::new_maicc();
    let mut t = 0;
    for i in 0..1000u32 {
        t = m.access(i * 32, false, t);
    }
    let s = m.stats();
    let pj = s.dynamic_pj();
    // bounded by the per-access constants
    assert!(pj > 1000.0 * 0.5 * READ_PJ);
    assert!(pj < 1000.0 * (READ_PJ + ACTIVATE_PJ) + 1e6);
}

/// The auxiliary-function codegen agrees with the golden requantizer on
/// random accumulators and multipliers — the scalar half of a mixed layer
/// is exactly what the golden model computes.
#[test]
fn requantize_codegen_matches_golden_requantizer() {
    use maicc::core::aux_codegen::{requantize_program, RequantParams};
    use maicc::isa::reg::Reg;
    use maicc::nn::quant::Requantizer;

    let mut mismatches = Vec::new();
    // deterministic pseudo-random sweep over multipliers and accumulators
    let mut x = 0x1234_5678u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..60 {
        let m = (next() % 9_000) as f64 / 10_000.0 + 0.05; // [0.05, 0.95)
        let zp = (next() % 21) as i32 - 10;
        let golden = Requantizer::from_real_multiplier(m, zp);
        let params = RequantParams {
            multiplier: golden.multiplier,
            shift: golden.shift,
            zero_point: golden.zero_point,
        };
        let program = requantize_program(params, false);
        for _ in 0..20 {
            let acc = (next() as i64 % 2_000_000 - 1_000_000) as i32;
            let mut node = Node::new(program.clone(), Box::new(NullPort::default()));
            node.set_reg(Reg::A0, acc as u32);
            node.run(10_000).unwrap();
            let hw = node.reg(Reg::A0) as i32 as i8;
            let sw = golden.apply(acc);
            if hw != sw {
                mismatches.push((m, acc, hw, sw));
            }
        }
    }
    assert!(mismatches.is_empty(), "mismatches: {mismatches:?}");
}
